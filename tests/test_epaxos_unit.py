"""Unit tests for the EPaxos replica and its dependency graph."""

from __future__ import annotations

from helpers import FakeContext
from repro.epaxos.graph import DependencyGraph
from repro.epaxos.messages import (
    EAccept,
    EAcceptReply,
    ECommit,
    EPreAccept,
    EPreAcceptReply,
)
from repro.epaxos.replica import EPaxosReplica
from repro.protocol.messages import ClientReply, ClientRequest
from repro.statemachine.command import Command, OpType


def make_replica(node_id=0, cluster=5):
    ctx = FakeContext(node_id=node_id, all_nodes=list(range(cluster)))
    replica = EPaxosReplica()
    replica.bind(ctx)
    replica.start()
    return replica, ctx


def request(key="k", client_id=1000, request_id=1) -> ClientRequest:
    return ClientRequest(
        command=Command(op=OpType.PUT, key=key, payload_size=8, client_id=client_id, request_id=request_id)
    )


class TestDependencyGraph:
    def test_linear_chain_executes_in_dependency_order(self):
        graph = DependencyGraph()
        graph.add_committed((0, 1), seq=1, deps=frozenset())
        graph.add_committed((0, 2), seq=2, deps=frozenset({(0, 1)}))
        order, visited = graph.execution_order((0, 2))
        assert order == [(0, 1), (0, 2)]
        assert visited >= 2

    def test_blocked_on_uncommitted_dependency(self):
        graph = DependencyGraph()
        graph.add_committed((0, 2), seq=2, deps=frozenset({(0, 1)}))
        order, _ = graph.execution_order((0, 2))
        assert order == []

    def test_cycle_resolved_by_seq_then_instance(self):
        graph = DependencyGraph()
        graph.add_committed((0, 1), seq=2, deps=frozenset({(1, 1)}))
        graph.add_committed((1, 1), seq=1, deps=frozenset({(0, 1)}))
        order, _ = graph.execution_order((0, 1))
        assert order == [(1, 1), (0, 1)]  # lower seq first within the SCC

    def test_executed_dependencies_are_skipped(self):
        graph = DependencyGraph()
        graph.add_committed((0, 1), seq=1, deps=frozenset())
        graph.mark_executed((0, 1))
        graph.add_committed((0, 2), seq=2, deps=frozenset({(0, 1)}))
        order, _ = graph.execution_order((0, 2))
        assert order == [(0, 2)]

    def test_already_executed_root_returns_empty(self):
        graph = DependencyGraph()
        graph.add_committed((0, 1), seq=1, deps=frozenset())
        graph.mark_executed((0, 1))
        assert graph.execution_order((0, 1)) == ([], 0)

    def test_diamond_dependencies(self):
        graph = DependencyGraph()
        graph.add_committed((0, 1), seq=1, deps=frozenset())
        graph.add_committed((1, 1), seq=2, deps=frozenset({(0, 1)}))
        graph.add_committed((2, 1), seq=2, deps=frozenset({(0, 1)}))
        graph.add_committed((3, 1), seq=3, deps=frozenset({(1, 1), (2, 1)}))
        order, _ = graph.execution_order((3, 1))
        assert order[0] == (0, 1)
        assert order[-1] == (3, 1)
        assert set(order) == {(0, 1), (1, 1), (2, 1), (3, 1)}


class TestCommandLeaderPath:
    def test_preaccept_broadcast_to_all_peers(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request())
        preaccepts = ctx.sent_of_type(EPreAccept)
        assert len(preaccepts) == 4
        assert all(msg.instance == (0, 1) for _, msg in preaccepts)

    def test_fast_path_commit_when_replies_unchanged(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request(client_id=1000, request_id=5))
        original = ctx.sent_of_type(EPreAccept)[0][1]
        ctx.clear_sent()
        # Fast quorum for n=5 is 3 (leader + 2 unchanged replies).
        for voter in (1, 2):
            replica.on_message(voter, EPreAcceptReply(
                instance=original.instance, voter=voter, ok=True,
                seq=original.seq, deps=original.deps, changed=False))
        commits = ctx.sent_of_type(ECommit)
        assert len(commits) == 4  # commit broadcast to everyone
        replies = ctx.sent_of_type(ClientReply)
        assert replies and replies[0][0] == 1000
        assert ctx.metrics.counter("epaxos.fast_path_commits").value == 1

    def test_changed_reply_forces_slow_path(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request())
        original = ctx.sent_of_type(EPreAccept)[0][1]
        ctx.clear_sent()
        extra_dep = frozenset({(3, 9)})
        replica.on_message(1, EPreAcceptReply(
            instance=original.instance, voter=1, ok=True,
            seq=original.seq + 1, deps=original.deps | extra_dep, changed=True))
        replica.on_message(2, EPreAcceptReply(
            instance=original.instance, voter=2, ok=True,
            seq=original.seq, deps=original.deps, changed=False))
        accepts = ctx.sent_of_type(EAccept)
        assert len(accepts) == 4
        assert accepts[0][1].deps >= extra_dep
        assert ctx.sent_of_type(ECommit) == []  # not committed yet
        # Majority of accept replies commits.
        ctx.clear_sent()
        for voter in (1, 2):
            replica.on_message(voter, EAcceptReply(instance=original.instance, voter=voter, ok=True))
        assert ctx.sent_of_type(ECommit)

    def test_sequential_conflicting_commands_get_dependencies(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request(key="same", request_id=1))
        first = ctx.sent_of_type(EPreAccept)[0][1]
        ctx.clear_sent()
        replica.on_message(1001, request(key="same", client_id=1001, request_id=1))
        second = ctx.sent_of_type(EPreAccept)[0][1]
        assert first.instance in second.deps
        assert second.seq > first.seq

    def test_non_conflicting_commands_have_no_deps(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request(key="a"))
        ctx.clear_sent()
        replica.on_message(1001, request(key="b", client_id=1001))
        second = ctx.sent_of_type(EPreAccept)[0][1]
        assert second.deps == frozenset()

    def test_bookkeeping_cost_charged_per_instance(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request())
        assert ctx.overhead_units == 1.0


class TestAcceptorPath:
    def test_preaccept_reply_reports_local_conflicts(self):
        replica, ctx = make_replica(node_id=1)
        # A previously known instance on the same key.
        replica.on_message(2, ECommit(instance=(2, 1),
                                      command=Command(op=OpType.PUT, key="same", payload_size=8),
                                      seq=4, deps=frozenset()))
        ctx.clear_sent()
        replica.on_message(0, EPreAccept(instance=(0, 1),
                                         command=Command(op=OpType.PUT, key="same", payload_size=8),
                                         seq=1, deps=frozenset()))
        reply = ctx.sent_of_type(EPreAcceptReply)[0][1]
        assert reply.changed
        assert (2, 1) in reply.deps
        assert reply.seq >= 5

    def test_unchanged_preaccept_reply_when_no_conflicts(self):
        replica, ctx = make_replica(node_id=1)
        replica.on_message(0, EPreAccept(instance=(0, 1),
                                         command=Command(op=OpType.PUT, key="x", payload_size=8),
                                         seq=1, deps=frozenset()))
        reply = ctx.sent_of_type(EPreAcceptReply)[0][1]
        assert not reply.changed

    def test_accept_acknowledged(self):
        replica, ctx = make_replica(node_id=3)
        replica.on_message(0, EAccept(instance=(0, 1),
                                      command=Command(op=OpType.PUT, key="x", payload_size=8),
                                      seq=1, deps=frozenset()))
        replies = ctx.sent_of_type(EAcceptReply)
        assert replies and replies[0][1].ok

    def test_commit_executes_on_every_replica(self):
        replica, ctx = make_replica(node_id=4)
        command = Command(op=OpType.PUT, key="x", value="42", payload_size=2)
        replica.on_message(0, ECommit(instance=(0, 1), command=command, seq=1, deps=frozenset()))
        assert replica.store.get("x") == "42"
        assert ctx.executed_commands == 1

    def test_execution_waits_for_dependencies(self):
        replica, ctx = make_replica(node_id=4)
        first = Command(op=OpType.PUT, key="x", value="1", payload_size=1)
        second = Command(op=OpType.PUT, key="x", value="2", payload_size=1)
        # Commit the dependent instance before its dependency.
        replica.on_message(0, ECommit(instance=(0, 2), command=second, seq=2, deps=frozenset({(0, 1)})))
        assert replica.store.get("x") is None
        replica.on_message(0, ECommit(instance=(0, 1), command=first, seq=1, deps=frozenset()))
        # Both now execute, dependency first.
        assert replica.store.get("x") == "2"

    def test_single_node_cluster_commits_immediately(self):
        replica, ctx = make_replica(node_id=0, cluster=1)
        replica.on_message(1000, request())
        assert ctx.sent_of_type(ClientReply)
        assert replica.graph.executed_count == 1


class TestReplyAccounting:
    """Retransmitted or duplicated replies must never fake a quorum."""

    def test_duplicate_preaccept_reply_does_not_commit_early(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request())
        original = ctx.sent_of_type(EPreAccept)[0][1]
        ctx.clear_sent()
        reply = EPreAcceptReply(
            instance=original.instance, voter=1, ok=True,
            seq=original.seq, deps=original.deps, changed=False)
        replica.on_message(1, reply)
        replica.on_message(1, reply)  # retransmission of the same vote
        assert ctx.sent_of_type(ECommit) == []
        assert ctx.metrics.counter("epaxos.duplicate_preaccept_replies").value == 1
        # A second *distinct* voter completes the fast quorum.
        replica.on_message(2, EPreAcceptReply(
            instance=original.instance, voter=2, ok=True,
            seq=original.seq, deps=original.deps, changed=False))
        assert ctx.sent_of_type(ECommit)

    def test_duplicate_accept_reply_does_not_commit_early(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request())
        original = ctx.sent_of_type(EPreAccept)[0][1]
        # Force the slow path with a changed reply.
        replica.on_message(1, EPreAcceptReply(
            instance=original.instance, voter=1, ok=True,
            seq=original.seq + 1, deps=original.deps | frozenset({(3, 9)}), changed=True))
        replica.on_message(2, EPreAcceptReply(
            instance=original.instance, voter=2, ok=True,
            seq=original.seq, deps=original.deps, changed=False))
        assert ctx.sent_of_type(EAccept)
        ctx.clear_sent()
        accept_reply = EAcceptReply(instance=original.instance, voter=1, ok=True)
        replica.on_message(1, accept_reply)
        replica.on_message(1, accept_reply)  # duplicate accept vote
        assert ctx.sent_of_type(ECommit) == []
        assert ctx.metrics.counter("epaxos.duplicate_accept_replies").value == 1
        replica.on_message(2, EAcceptReply(instance=original.instance, voter=2, ok=True))
        assert ctx.sent_of_type(ECommit)

    def test_own_vote_in_reply_is_ignored(self):
        replica, ctx = make_replica()
        replica.on_message(1000, request())
        original = ctx.sent_of_type(EPreAccept)[0][1]
        ctx.clear_sent()
        # A (corrupted/echoed) reply claiming to be the leader's own vote
        # must not count a second time.
        replica.on_message(1, EPreAcceptReply(
            instance=original.instance, voter=0, ok=True,
            seq=original.seq, deps=original.deps, changed=False))
        replica.on_message(1, EPreAcceptReply(
            instance=original.instance, voter=1, ok=True,
            seq=original.seq, deps=original.deps, changed=False))
        assert ctx.sent_of_type(ECommit) == []


class TestKeyIndexMonotonicity:
    """Stale redeliveries must never cost a dependency edge."""

    def test_stale_preaccept_redelivery_keeps_newer_dependency(self):
        replica, ctx = make_replica(node_id=1)
        key_cmd = Command(op=OpType.PUT, key="same", payload_size=8)
        old = EPreAccept(instance=(2, 1), command=key_cmd, seq=1, deps=frozenset())
        replica.on_message(2, old)
        newer = ECommit(instance=(2, 5), command=key_cmd, seq=9, deps=frozenset({(2, 1)}))
        replica.on_message(2, newer)
        # The old PreAccept is redelivered (duplicate); it must not shadow
        # (2, 5) in the key index.
        ctx.clear_sent()
        replica.on_message(2, old)
        assert ctx.metrics.counter("epaxos.key_index_stale_updates_skipped").value >= 1
        seq, deps = replica._conflicts_for(Command(op=OpType.PUT, key="same", payload_size=8))
        assert (2, 5) in deps
        assert seq >= 10

    def test_contended_writers_never_lose_an_edge(self):
        """Two same-seq instances from different leaders must *both* stay in
        the conflict index: the next command depends on each of them."""
        replica, ctx = make_replica(node_id=1)
        cmd = Command(op=OpType.PUT, key="hot", payload_size=8)
        # Two conflicting instances commit with the same sequence number
        # (concurrent leaders that did not see each other).
        replica.on_message(0, ECommit(instance=(0, 7), command=cmd, seq=4, deps=frozenset()))
        replica.on_message(4, ECommit(instance=(4, 3), command=cmd, seq=4, deps=frozenset()))
        seq, deps = replica._conflicts_for(Command(op=OpType.PUT, key="hot", payload_size=8))
        assert (0, 7) in deps and (4, 3) in deps
        assert seq == 5

    def test_index_tracks_latest_instance_per_origin(self):
        replica, ctx = make_replica(node_id=1)
        cmd = Command(op=OpType.PUT, key="k", payload_size=8)
        replica.on_message(0, ECommit(instance=(0, 1), command=cmd, seq=1, deps=frozenset()))
        replica.on_message(0, ECommit(instance=(0, 2), command=cmd, seq=2, deps=frozenset({(0, 1)})))
        _, deps = replica._conflicts_for(Command(op=OpType.PUT, key="k", payload_size=8))
        # Only origin 0's *latest* instance is a direct dependency; (0, 1)
        # is reachable through it.
        assert deps == frozenset({(0, 2)})


class TestAtMostOnceExecution:
    def _commit_fast(self, replica, ctx, instance_msg):
        for voter in (1, 2):
            replica.on_message(voter, EPreAcceptReply(
                instance=instance_msg.instance, voter=voter, ok=True,
                seq=instance_msg.seq, deps=instance_msg.deps, changed=False))

    def test_retried_command_in_second_instance_applies_once(self):
        """A client retry that spawns a second instance must not re-apply,
        and its leader must still answer with the cached result."""
        replica, ctx = make_replica()
        first = Command(op=OpType.PUT, key="k", value="mine", payload_size=4,
                        client_id=1000, request_id=7)
        replica.on_message(1000, ClientRequest(command=first))
        msg1 = ctx.sent_of_type(EPreAccept)[0][1]
        self._commit_fast(replica, ctx, msg1)
        assert replica.store.get("k") == "mine"
        first_reply = [m for dst, m in ctx.sent_of_type(ClientReply) if dst == 1000][0]

        # Another command from a different client writes the same key.
        other = Command(op=OpType.PUT, key="k", value="theirs", payload_size=6,
                        client_id=1001, request_id=1)
        ctx.clear_sent()
        replica.on_message(1001, ClientRequest(command=other))
        msg2 = ctx.sent_of_type(EPreAccept)[0][1]
        self._commit_fast(replica, ctx, msg2)
        assert replica.store.get("k") == "theirs"

        # The first client retries (reply lost): a *third* instance carries
        # the same command.  It commits and executes but must not clobber.
        ctx.clear_sent()
        replica.on_message(1000, ClientRequest(command=first))
        msg3 = ctx.sent_of_type(EPreAccept)[0][1]
        self._commit_fast(replica, ctx, msg3)
        assert replica.store.get("k") == "theirs"
        assert ctx.metrics.counter("epaxos.duplicate_commands_skipped").value == 1
        retry_replies = [m for dst, m in ctx.sent_of_type(ClientReply) if dst == 1000]
        assert len(retry_replies) == 1  # the retry is still answered...
        assert retry_replies[0].result == first_reply.result  # ...with the cached result

    def test_duplicate_execution_suppressed_on_followers_too(self):
        replica, ctx = make_replica(node_id=3)
        command = Command(op=OpType.PUT, key="x", value="1", payload_size=1,
                          client_id=1000, request_id=5)
        replica.on_message(0, ECommit(instance=(0, 1), command=command, seq=1, deps=frozenset()))
        replica.on_message(4, ECommit(instance=(4, 1), command=command, seq=2,
                                      deps=frozenset({(0, 1)})))
        assert replica.graph.executed_count == 2
        assert replica.store.applied_count == 1
        # Followers never answer clients.
        assert ctx.sent_of_type(ClientReply) == []

    def test_sessions_are_scoped_per_client_and_key(self):
        """A tiny window must not let traffic on *other* keys evict a
        session entry: EPaxos only orders conflicting commands, so evictions
        are replica-deterministic only within a (client, key) session."""
        replica, ctx = make_replica(node_id=3)
        replica._session_window = 1
        r1 = Command(op=OpType.PUT, key="a", value="1", payload_size=1,
                     client_id=1000, request_id=1)
        r2 = Command(op=OpType.PUT, key="b", value="2", payload_size=1,
                     client_id=1000, request_id=2)
        replica.on_message(0, ECommit(instance=(0, 1), command=r1, seq=1, deps=frozenset()))
        replica.on_message(0, ECommit(instance=(0, 2), command=r2, seq=1, deps=frozenset()))
        # A duplicate instance of r1 (client retry) must still be deduped
        # even though r2 executed in between with window=1.
        replica.on_message(4, ECommit(instance=(4, 1), command=r1, seq=2,
                                      deps=frozenset({(0, 1)})))
        assert replica.store.applied_count == 2
        assert ctx.metrics.counter("epaxos.duplicate_commands_skipped").value == 1

    def test_executed_order_is_recorded(self):
        replica, ctx = make_replica(node_id=3)
        a = Command(op=OpType.PUT, key="x", value="1", payload_size=1)
        b = Command(op=OpType.PUT, key="x", value="2", payload_size=1)
        replica.on_message(0, ECommit(instance=(0, 2), command=b, seq=2, deps=frozenset({(0, 1)})))
        replica.on_message(0, ECommit(instance=(0, 1), command=a, seq=1, deps=frozenset()))
        assert replica.executed_order == [(0, 1), (0, 2)]


class TestDependencyGraphProperties:
    """Execution planning must be deterministic and seq-respecting no matter
    the order in which commits arrive."""

    def _random_graph(self, rng, num_instances):
        """A random committed conflict graph (chains + random extra edges)."""
        instances = [(rng.randrange(5), i) for i in range(1, num_instances + 1)]
        entries = []
        for index, instance in enumerate(instances):
            deps = set()
            if index > 0:
                # chain edge keeps the conflict graph connected
                deps.add(instances[index - 1])
                for _ in range(rng.randrange(3)):
                    deps.add(instances[rng.randrange(index)])
            # occasional forward edge to build dependency cycles
            if index + 1 < len(instances) and rng.random() < 0.3:
                deps.add(instances[index + 1])
            entries.append((instance, index + 1, frozenset(deps)))
        return entries

    def _drain(self, entries, order):
        """Mimic the replica's executor: commit in ``order``, executing
        every instance whose closure is ready; return the execution order."""
        graph = DependencyGraph()
        executed = []
        pending = set()
        for position in order:
            instance, seq, deps = entries[position]
            graph.add_committed(instance, seq, deps)
            pending.add(instance)
            progressed = True
            while progressed:
                progressed = False
                for root in sorted(pending):
                    plan, _ = graph.execution_order(root)
                    if not plan:
                        continue
                    for ready in plan:
                        graph.mark_executed(ready)
                        executed.append(ready)
                        pending.discard(ready)
                    progressed = True
        return executed

    def test_execution_order_is_independent_of_commit_interleaving(self):
        import random

        for seed in range(12):
            rng = random.Random(seed)
            entries = self._random_graph(rng, num_instances=24)
            baseline = self._drain(entries, list(range(len(entries))))
            assert len(baseline) == len(entries)  # everything executes
            for _ in range(4):
                shuffled = list(range(len(entries)))
                rng.shuffle(shuffled)
                assert self._drain(entries, shuffled) == baseline, f"seed {seed}"

    def test_execution_order_call_is_deterministic(self):
        import random

        rng = random.Random(99)
        entries = self._random_graph(rng, num_instances=16)
        graph = DependencyGraph()
        for instance, seq, deps in entries:
            graph.add_committed(instance, seq, deps)
        root = entries[-1][0]
        first, _ = graph.execution_order(root)
        second, _ = graph.execution_order(root)
        assert first == second
        assert first  # fully committed graph always yields a plan

    def test_seq_order_respected_within_cycles(self):
        import random

        rng = random.Random(7)
        for _ in range(8):
            # A dependency cycle of n mutually conflicting instances.
            size = rng.randrange(2, 6)
            members = [(m, 1) for m in range(size)]
            seqs = list(range(1, size + 1))
            rng.shuffle(seqs)
            graph = DependencyGraph()
            for index, member in enumerate(members):
                graph.add_committed(
                    member, seqs[index],
                    frozenset(members[:index] + members[index + 1:]))
            order, _ = graph.execution_order(members[0])
            expected = [m for _, m in sorted(zip(seqs, members))]
            assert order == expected
