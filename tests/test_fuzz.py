"""Fuzz-tier gates: grammar determinism, shrinking, mutation calibration.

The fuzzer's value rests on three properties, each pinned here:

* **Determinism** -- the same fuzz seed regenerates a bit-identical
  ``Scenario``, so any finding is replayable from its seed alone.
* **Shrinking** -- a checker-violating schedule shrinks to a strictly
  smaller scenario that still trips the same checker family, and the
  emitted literal round-trips back into an equal scenario.
* **Calibration** -- with each of the three re-seeded historical EPaxos
  bugs patched in (``repro.fuzz.mutations``), the fleet actually finds a
  violation within a few seeds; a fuzzer that cannot re-find known bugs
  proves nothing when it runs clean.

Plus the parallel sweep contract: ``sweep(..., parallel=N)`` must produce
the same per-scenario fingerprints as the serial path, in the same order.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.fuzz import (
    DEFAULT_PROFILE,
    MUTATIONS,
    FuzzProfile,
    apply_mutation,
    generate_scenario,
    run_fleet,
    scenario_literal,
    shrink,
)
from repro.fuzz.shrink import _cost
from repro.scenarios.library import EPAXOS_CHECK_NAMES, get_scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import Scenario, ScenarioEvent
from repro.scenarios.sweep import SweepOutcome, run_outcome, sweep
from repro.workload.spec import WorkloadSpec

#: Cheapest fuzz seed per mutation whose generated schedule violates a
#: checker under that mutation (epaxos-only profile; found by sweeping
#: seeds from 0 and pinned so the calibration tests stay fast).
CALIBRATION_SEEDS = {
    "vote-dedup": 12,
    "key-index": 1,
    "planner-order": 0,
}

EPAXOS_PROFILE = replace(DEFAULT_PROFILE, protocols=("epaxos",))


# ---------------------------------------------------------------- grammar
class TestGrammar:
    def test_same_seed_same_schedule(self):
        for seed in (0, 7, 42, 1234, 99999):
            assert generate_scenario(seed) == generate_scenario(seed)

    def test_same_seed_same_literal(self):
        for seed in (3, 42):
            a = scenario_literal(generate_scenario(seed))
            b = scenario_literal(generate_scenario(seed))
            assert a == b

    def test_seeds_generate_distinct_schedules(self):
        schedules = {scenario_literal(generate_scenario(seed)) for seed in range(20)}
        assert len(schedules) > 15  # collisions would mean a broken RNG feed

    def test_many_seeds_build_valid_scenarios(self):
        # Scenario/ScenarioEvent validate on construction, so building is
        # the property; spot-check the profile's promises on top.
        for seed in range(120):
            scenario = generate_scenario(seed)
            assert scenario.protocol in DEFAULT_PROFILE.protocols
            assert 3 <= scenario.num_nodes <= 25
            assert scenario.seed == seed
            assert len(scenario.events) <= DEFAULT_PROFILE.max_events
            for event in scenario.events:
                assert 0 < event.at < scenario.duration

    def test_profile_restricts_protocols(self):
        for seed in range(30):
            assert generate_scenario(seed, EPAXOS_PROFILE).protocol == "epaxos"

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            FuzzProfile(protocols=("raft",))
        with pytest.raises(ConfigurationError):
            FuzzProfile(min_events=5, max_events=2)

    def test_client_timeout_must_be_positive(self):
        # Fuzz-found: client_timeout=None used to crash deep inside the
        # client's timer scheduling instead of failing validation.
        with pytest.raises(ConfigurationError):
            Scenario(name="bad", client_timeout=None)
        with pytest.raises(ConfigurationError):
            Scenario(name="bad", client_timeout=0.0)


# ---------------------------------------------------------------- mutations
class TestMutations:
    def test_unknown_mutation_rejected(self):
        with pytest.raises(KeyError):
            with apply_mutation("no-such-bug"):
                pass

    def test_none_is_noop(self):
        with apply_mutation(None):
            pass

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_mutations_are_reversible(self, name):
        from repro.epaxos.graph import DependencyGraph
        from repro.epaxos.replica import EPaxosReplica

        before = (
            EPaxosReplica.__dict__["_register_vote"],
            EPaxosReplica.__dict__["_record_key"],
            DependencyGraph.__dict__["execution_order"],
        )
        with apply_mutation(name):
            after = (
                EPaxosReplica.__dict__["_register_vote"],
                EPaxosReplica.__dict__["_record_key"],
                DependencyGraph.__dict__["execution_order"],
            )
            assert after != before  # the patch actually landed
        restored = (
            EPaxosReplica.__dict__["_register_vote"],
            EPaxosReplica.__dict__["_record_key"],
            DependencyGraph.__dict__["execution_order"],
        )
        assert restored == before

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_fleet_refinds_reseeded_bug(self, name):
        seed = CALIBRATION_SEEDS[name]
        report = run_fleet(
            start_seed=seed,
            count=1,
            profile=EPAXOS_PROFILE,
            mutation=name,
            shrink_findings=False,
        )
        assert len(report.findings) == 1
        assert report.findings[0].checkers  # names the violated checkers


# ---------------------------------------------------------------- shrinker
class TestShrinker:
    def test_shrink_requires_a_violation(self):
        clean = get_scenario("epaxos-baseline-5")
        with pytest.raises(ValueError):
            shrink(clean)

    def test_shrink_preserves_checker_and_reduces_cost(self):
        # key-index on its calibration seed: the cheapest real violation.
        seed = CALIBRATION_SEEDS["key-index"]
        scenario = generate_scenario(seed, EPAXOS_PROFILE)
        with apply_mutation("key-index"):
            result = shrink(scenario, max_runs=60)
            still = {v.checker for v in run_scenario(result.shrunk).violations}
        assert still & result.checkers, "shrunk repro stopped violating"
        assert _cost(result.shrunk) < _cost(scenario)
        assert result.runs <= 60
        assert result.shrunk.name == f"{scenario.name}-min"

    def test_shrink_is_deterministic(self):
        seed = CALIBRATION_SEEDS["planner-order"]
        scenario = generate_scenario(seed, EPAXOS_PROFILE)
        with apply_mutation("planner-order"):
            a = shrink(scenario, max_runs=40)
            b = shrink(scenario, max_runs=40)
        assert a.shrunk == b.shrunk
        assert a.steps == b.steps


# ---------------------------------------------------------------- literal
class TestScenarioLiteral:
    def _roundtrip(self, scenario):
        source = scenario_literal(scenario)
        namespace = {
            "Scenario": Scenario,
            "E": ScenarioEvent,
            "WorkloadSpec": WorkloadSpec,
            "EPAXOS_CHECK_NAMES": EPAXOS_CHECK_NAMES,
        }
        return eval(source, namespace)  # noqa: S307 - our own emitted source

    @pytest.mark.parametrize("seed", [0, 1, 12, 42, 77, 1234])
    def test_fuzzed_scenarios_round_trip(self, seed):
        scenario = generate_scenario(seed)
        assert self._roundtrip(scenario) == scenario

    def test_library_scenario_round_trips(self):
        scenario = get_scenario("epaxos-even-cluster-retry")
        assert self._roundtrip(scenario) == scenario


# ---------------------------------------------------------------- regression
class TestFuzzFoundRegressions:
    def test_even_cluster_retry_repro_passes(self):
        # The shrunk seed-42 repro: even-cluster fast quorums + WAN client
        # retries.  Green only because FastQuorum floors the fast path at
        # a majority; see test_quorum.py for the size-level pin.
        result = run_scenario(get_scenario("epaxos-even-cluster-retry"))
        assert result.ok, result.violations
        assert result.completed_requests >= 10

    def test_deposed_leader_phantom_read_repro_passes(self):
        # The shrunk fleet-seed-257 repro: a deposed PigPaxos leader whose
        # slot was NoOp-filled by the takeover must not acknowledge the
        # orphaned client command with the NoOp's empty result.
        result = run_scenario(get_scenario("pig-deposed-leader-phantom-read"))
        assert result.ok, result.violations
        assert result.completed_requests >= 40

    def test_region_partition_recovery_repro_passes(self):
        # The shrunk fleet-seed-462 repro: explicit-prepare recovery under a
        # region partition must respect latest-per-origin deps semantics in
        # its fast-commit disproof.
        result = run_scenario(get_scenario("epaxos-region-partition-recovery"))
        assert result.ok, result.violations
        assert result.completed_requests >= 10


# ---------------------------------------------------------------- parallel
class TestParallelSweep:
    NAMES = ("pig-lossy-background", "epaxos-thrifty-severed-links",
             "epaxos-drop-storm")

    def test_parallel_matches_serial(self):
        scenarios = [get_scenario(name) for name in self.NAMES]
        serial = sweep(scenarios)
        parallel = sweep(scenarios, parallel=2)
        assert [o.name for o in parallel] == [o.name for o in serial]
        assert [o.fingerprint for o in parallel] == [o.fingerprint for o in serial]
        assert all(o.ok for o in parallel)

    def test_outcome_is_picklable(self):
        import pickle

        outcome = run_outcome(get_scenario("pig-lossy-background"))
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone == outcome
        assert isinstance(clone, SweepOutcome)
