"""Golden determinism fingerprints: the simulator-optimization tripwire.

The hot-path overhaul (slotted events, tuple-compare heap entries, lazy
histograms, per-type size caches, the incremental commit-frontier scan,
inlined send paths) was required to preserve simulation results *bit for
bit*: same seeds, same RNG draw order, same event counts, same virtual
times, same client histories.  The fingerprints below were recorded on the
pre-optimization tree (commit e5b611d) and verified identical on the
optimized tree; any future "optimization" that shifts an event time, an RNG
draw, or an event count by even one ulp fails here immediately.

The set covers one representative per protocol, overlay and fault family:
Paxos and PigPaxos baselines, WAN relay groups, a drop-storm with relay
timeouts, EPaxos direct/relay/thrifty overlays, duplicate-delivery torture,
and the two paper-scale 25-node deployments.  (The 40-virtual-second
fault-tolerance run is covered by the cheaper storms here plus the safety
sweep in ``test_scenarios.py`` -- re-running tens of wall-clock seconds for
an identical signal is not worth the CI time.)

``ScenarioResult.fingerprint()`` hashes the recorded client history, the
completed-operation count, the total event count and the final virtual
time, so it is machine-independent: only simulation semantics move it.

One deliberate re-record since the original set: enabling
``ProtocolConfig.recovery_timeout`` by default (the fuzzing PR) moved
``epaxos-thrifty-crash`` -- the one golden scenario in which an instance
actually blocks long enough for recovery to arm and fire (the crash
orphans in-flight rounds).  Every other golden fingerprint is unchanged,
which is itself evidence for the lazy-arming contract: recovery schedules
nothing in runs that never block.
"""

from __future__ import annotations

import pytest

from repro.scenarios.library import get_scenario
from repro.scenarios.runner import ScenarioRunner

#: scenario name -> fingerprint recorded at the pre-optimization baseline.
GOLDEN_FINGERPRINTS = {
    "pig-baseline-5": "4d7622561909e222d6c953db6204cccc85bb6bd033a2057685458e708b26b40e",
    "paxos-baseline-5": "1fb9abcdd8059ffbfb833fdc9c4667e5f8a09dfaf84dceed0f73a6ff91280bf1",
    "pig-wan-9": "189865e85d7041be4ae3b60eec234420b17b809ebb5b501743b5a7741a3ed1ae",
    "pig-relay-timeout-storm": "1b3c0986c7ff3366eff2491f71d52a2f28cc93e0c2014911545d0d7fbed68b8d",
    "epaxos-baseline-5": "81002a74403f56d167e2ac6ad6af9bd534c54d9c723510caad4314bf5a50182e",
    "epaxos-relay-wan-9": "733cb905f5b355bd6e92c5369cc04254a3acfb34b2db75210e16c1a76f1b4ba5",
    # Re-recorded twice, both deliberately, and only this scenario -- it is
    # the one golden in which an instance blocks long enough for recovery to
    # arm and fire: (1) recovery_timeout default-on (642 -> 645 ops);
    # (2) the fuzz-found recovery fix -- the fast-commit disproof now
    # honours latest-per-origin deps semantics, changing recovery
    # re-proposal outcomes (645 -> 649 ops).
    "epaxos-thrifty-crash": "c0f9eb9af006c53d776ef0604f04c2b07e918c19d76813021d29e4e610d033b4",
    "epaxos-duplicate-torture": "35b164448a71c318befcd162779819ed02b942bc694f930eeda7f7bb1abf527e",
    "paxos-throughput-25": "a31b239a31e6cefa06d77b2cf62c7058adf0c4f68cae3f83220e41f8734ff9b2",
    "epaxos-relay-wan-25": "33c1e9444b5bc5788c0dbfef50bb2992abe57af9fb4f85593bec48411a29b472",
    # Sharding tripwires (recorded at the sharding PR): 4 consensus groups
    # co-hosted on 5 nodes, leaders round-robin, clients routing per key.
    # Every *unsharded* fingerprint above predates sharding and must stay
    # byte-identical -- the single-group path shares the sharded code's
    # client/network/builder surfaces, so these pins prove shards=1 pays
    # zero determinism tax (no extra RNG draws, no reordered events).
    "paxos-sharded-4": "2d696109ea25503fa0e2cc4ecdd8048bd65dc0f3aa77e9230a05cb0ad99988a2",
    "epaxos-sharded-4": "49e235b42e538c3547b717d0f1839e9724435eb0d385337e204b2a3cbfefa750",
    # Batching tripwires (recorded at the batching/pipelining PR): one per
    # protocol family, each the batched twin of an existing scenario.
    # Every *unbatched* fingerprint above must stay byte-identical --
    # batching defaults off (batch_max_commands=1) and the disabled path
    # allocates no buffers, arms no timers and registers no metrics, so
    # these pins plus the unchanged controls prove the default pays zero
    # determinism tax.
    "paxos-throughput-25-batched": "63dfd0b15bc8eb04806778ee6004692fdc636f7c85d619018c199b9843bb43d8",
    "pig-batched-5": "e431511b87bd8e746c610fd65a622a45811f498368a90fb1af05e2400a8c5f77",
    "epaxos-batched-5": "3960d2bbebd11f1f491080de748b079307ca9d7f6f53e2e8659fb6fb2078d406",
    # Planet-hierarchy tripwires (recorded at the hierarchical-topology PR):
    # region/zone topologies at 49-81 nodes with zone-aligned two-level
    # relay trees, one per new fault family (region partition, zone crash,
    # deep-relay crash, WAN degradation).  Every pre-hierarchy fingerprint
    # above must stay byte-identical -- flat topologies carry no zones, a
    # zoneless relay plan is the historical single-level planner, and
    # leaves never ack commits, so these pins plus the unchanged controls
    # prove the degenerate path pays zero determinism tax.
    "pig-planet-region-loss-49": "a039e512ffd78607d66975866cccf9f724ffb8bbb3b4ab5c1a087eee525b600c",
    "pig-planet-zone-crash-75": "6761fb480dfd6571ef87371d33a362bee7c5dfe9a0cbda70407102a4382d5cd6",
    "epaxos-planet-deep-relay-crash-49": "f386db4dc4eb95904a4f8206d8c03e69c28ec076520d58529b327a5a1e3a6831",
    "pig-planet-wan-degradation-81": "bbe9bdce1768b25639358974823bf082319e0702d735cdd5e661b3e8fcf56292",
}


@pytest.mark.parametrize("name", sorted(GOLDEN_FINGERPRINTS))
def test_fingerprint_matches_pre_optimization_golden(name):
    result = ScenarioRunner(get_scenario(name)).run()
    assert result.ok, result.violations
    assert result.fingerprint() == GOLDEN_FINGERPRINTS[name], (
        f"scenario {name!r} no longer reproduces its pre-optimization "
        f"fingerprint: an optimization changed simulation semantics "
        f"(event order, RNG draw order, event count, or timing)"
    )
