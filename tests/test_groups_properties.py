"""Property-based tests for the relay-group planners and tree builder.

Seeded random cluster shapes (the container has no hypothesis, so this is
a hand-rolled property harness: each seed generates one random case and
asserts the planner invariants the PigPaxos overlay depends on):

* every follower lands in exactly one group,
* the group count honours the configuration,
* region grouping respects the ``region_of`` map, and
* per-round relay trees cover each group member exactly once.
"""

from __future__ import annotations

import random

import pytest

from repro.core.groups import (
    HierarchicalGroupPlan,
    RelayGroupPlan,
    contiguous_groups,
    hash_groups,
    region_groups,
    round_robin_groups,
)
from repro.errors import ConfigurationError

SEEDS = list(range(30))

PARTITIONERS = (contiguous_groups, round_robin_groups, hash_groups)


def random_members(rng: random.Random) -> list:
    size = rng.randint(1, 60)
    members = rng.sample(range(1000), size)
    rng.shuffle(members)
    return members


class TestPartitioners:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("partitioner", PARTITIONERS, ids=lambda p: p.__name__)
    def test_every_follower_appears_exactly_once(self, partitioner, seed):
        rng = random.Random(seed)
        members = random_members(rng)
        num_groups = rng.randint(1, 8)
        groups = partitioner(members, num_groups)
        flat = [member for group in groups for member in group]
        assert sorted(flat) == sorted(members)
        assert len(flat) == len(set(flat))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("partitioner", PARTITIONERS, ids=lambda p: p.__name__)
    def test_group_count_matches_config(self, partitioner, seed):
        rng = random.Random(seed)
        members = random_members(rng)
        num_groups = rng.randint(1, 8)
        groups = partitioner(members, num_groups)
        assert len(groups) == min(num_groups, len(members))
        assert all(group for group in groups)

    @pytest.mark.parametrize("partitioner", PARTITIONERS, ids=lambda p: p.__name__)
    def test_zero_groups_rejected(self, partitioner):
        with pytest.raises(ConfigurationError):
            partitioner([1, 2, 3], 0)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_group_sizes_are_balanced(self, seed):
        # Contiguous and round-robin promise near-equal sizes (max spread 1).
        rng = random.Random(seed)
        members = random_members(rng)
        num_groups = rng.randint(1, 8)
        for partitioner in (contiguous_groups, round_robin_groups):
            sizes = [len(group) for group in partitioner(members, num_groups)]
            assert max(sizes) - min(sizes) <= 1


class TestRegionGroups:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_region_grouping_respects_region_of(self, seed):
        rng = random.Random(seed)
        members = random_members(rng)
        regions = ("virginia", "california", "oregon", "tokyo")
        region_of = {
            member: rng.choice(regions)
            for member in members
            if rng.random() > 0.1  # some members have no region (leftovers)
        }
        groups = region_groups(members, region_of)
        flat = [member for group in groups for member in group]
        assert sorted(flat) == sorted(members)
        for group in groups:
            group_regions = {region_of.get(member) for member in group}
            assert len(group_regions) == 1  # one region per group (None = leftovers)
        present = {region_of[m] for m in members if m in region_of}
        leftovers = [m for m in members if m not in region_of]
        assert len(groups) == len(present) + (1 if leftovers else 0)


class TestRelayTrees:
    @pytest.mark.parametrize("seed", SEEDS[:12])
    @pytest.mark.parametrize("levels", (1, 2, 3))
    def test_trees_cover_every_member_exactly_once(self, seed, levels):
        rng = random.Random(seed)
        members = random_members(rng)
        num_groups = rng.randint(1, 6)
        plan = RelayGroupPlan(groups=round_robin_groups(members, num_groups))
        trees = plan.build_trees(rng, levels=levels)
        assert len(trees) == plan.num_groups
        covered = [node for tree in trees for node in tree.all_nodes()]
        assert sorted(covered) == sorted(members)
        assert len(covered) == len(set(covered))

    @pytest.mark.parametrize("seed", SEEDS[:12])
    def test_reshuffle_preserves_membership_and_sizes(self, seed):
        rng = random.Random(seed)
        members = random_members(rng)
        plan = RelayGroupPlan(groups=round_robin_groups(members, rng.randint(1, 6)))
        reshuffled = plan.reshuffle(rng)
        assert sorted(reshuffled.members) == sorted(members)
        assert [len(g) for g in reshuffled.groups] == [len(g) for g in plan.groups]

    def test_duplicate_membership_rejected(self):
        with pytest.raises(ConfigurationError):
            RelayGroupPlan(groups=[[1, 2], [2, 3]])

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError):
            RelayGroupPlan(groups=[[1], []])


def tree_shape(tree):
    """Structural view of a RelaySubtree (the class itself compares by id)."""
    return (tree.node_id, tuple(tree_shape(child) for child in tree.children))


def random_hierarchy(rng: random.Random):
    """A random member set with region/zone placement (some members bare)."""
    members = random_members(rng)
    regions = ("virginia", "california", "oregon", "tokyo")[: rng.randint(2, 4)]
    zones_per_region = rng.randint(1, 3)
    region_of, zone_of = {}, {}
    for member in members:
        if rng.random() < 0.1:
            continue  # regionless leftover
        region = rng.choice(regions)
        region_of[member] = region
        if rng.random() < 0.9:
            zone_of[member] = f"{region}-z{rng.randrange(zones_per_region)}"
    return members, region_of, zone_of


class TestHierarchicalPlans:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_plan_partitions_every_member(self, seed):
        rng = random.Random(seed)
        members, region_of, zone_of = random_hierarchy(rng)
        plan = HierarchicalGroupPlan.from_hierarchy(members, region_of, zone_of)
        assert sorted(plan.members) == sorted(members)
        for group, partition in zip(plan.groups, plan.zones):
            flat = [m for zone in partition for m in zone]
            assert sorted(flat) == sorted(group)
            assert {region_of.get(m) for m in group} <= {None} | set(
                region_of.values()
            )
            assert len({region_of.get(m) for m in group}) == 1

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("levels", (2, 3))
    def test_deep_trees_cover_members_and_respect_zones(self, seed, levels):
        rng = random.Random(seed)
        members, region_of, zone_of = random_hierarchy(rng)
        plan = HierarchicalGroupPlan.from_hierarchy(members, region_of, zone_of)
        trees = plan.build_trees(rng, levels=levels)
        covered = [node for tree in trees for node in tree.all_nodes()]
        assert sorted(covered) == sorted(members)
        assert len(covered) == len(set(covered))
        for tree, group in zip(trees, plan.groups):
            # The group relay comes from its own region group...
            assert tree.node_id in group
            # ...and each of its child subtrees stays inside one zone (the
            # unzoned pseudo-zone counts as a zone of its own).
            for child in tree.children:
                child_zones = {zone_of.get(n) for n in child.all_nodes()}
                assert len(child_zones) == 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_zoneless_plan_degenerates_to_plain_region_plan(self, seed):
        # The degenerate case behind the golden-fingerprint guarantee: with
        # no zone placement at all, the hierarchical plan is exactly the
        # plain region plan -- same groups, and identical trees from
        # identical RNG state at every level.
        rng = random.Random(seed)
        members, region_of, _ = random_hierarchy(rng)
        plan = HierarchicalGroupPlan.from_hierarchy(members, region_of, {})
        plain = RelayGroupPlan(groups=region_groups(members, region_of))
        assert plan.groups == plain.groups
        trees = plan.build_trees(random.Random(seed + 1), levels=1)
        expected = plain.build_trees(random.Random(seed + 1), levels=1)
        assert [tree_shape(t) for t in trees] == [tree_shape(t) for t in expected]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reshuffle_preserves_zone_membership(self, seed):
        rng = random.Random(seed)
        members, region_of, zone_of = random_hierarchy(rng)
        plan = HierarchicalGroupPlan.from_hierarchy(members, region_of, zone_of)
        reshuffled = plan.reshuffle(rng)
        assert isinstance(reshuffled, HierarchicalGroupPlan)
        assert sorted(reshuffled.members) == sorted(members)
        for before, after in zip(plan.zones, reshuffled.zones):
            assert [sorted(z) for z in before] == [sorted(z) for z in after]

    def test_mismatched_zone_partition_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchicalGroupPlan(groups=[[1, 2]], zones=[[[1], [3]]])
        with pytest.raises(ConfigurationError):
            HierarchicalGroupPlan(groups=[[1, 2], [3]], zones=[[[1, 2]]])
