"""Property-based tests for the relay-group planners and tree builder.

Seeded random cluster shapes (the container has no hypothesis, so this is
a hand-rolled property harness: each seed generates one random case and
asserts the planner invariants the PigPaxos overlay depends on):

* every follower lands in exactly one group,
* the group count honours the configuration,
* region grouping respects the ``region_of`` map, and
* per-round relay trees cover each group member exactly once.
"""

from __future__ import annotations

import random

import pytest

from repro.core.groups import (
    RelayGroupPlan,
    contiguous_groups,
    hash_groups,
    region_groups,
    round_robin_groups,
)
from repro.errors import ConfigurationError

SEEDS = list(range(30))

PARTITIONERS = (contiguous_groups, round_robin_groups, hash_groups)


def random_members(rng: random.Random) -> list:
    size = rng.randint(1, 60)
    members = rng.sample(range(1000), size)
    rng.shuffle(members)
    return members


class TestPartitioners:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("partitioner", PARTITIONERS, ids=lambda p: p.__name__)
    def test_every_follower_appears_exactly_once(self, partitioner, seed):
        rng = random.Random(seed)
        members = random_members(rng)
        num_groups = rng.randint(1, 8)
        groups = partitioner(members, num_groups)
        flat = [member for group in groups for member in group]
        assert sorted(flat) == sorted(members)
        assert len(flat) == len(set(flat))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("partitioner", PARTITIONERS, ids=lambda p: p.__name__)
    def test_group_count_matches_config(self, partitioner, seed):
        rng = random.Random(seed)
        members = random_members(rng)
        num_groups = rng.randint(1, 8)
        groups = partitioner(members, num_groups)
        assert len(groups) == min(num_groups, len(members))
        assert all(group for group in groups)

    @pytest.mark.parametrize("partitioner", PARTITIONERS, ids=lambda p: p.__name__)
    def test_zero_groups_rejected(self, partitioner):
        with pytest.raises(ConfigurationError):
            partitioner([1, 2, 3], 0)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_group_sizes_are_balanced(self, seed):
        # Contiguous and round-robin promise near-equal sizes (max spread 1).
        rng = random.Random(seed)
        members = random_members(rng)
        num_groups = rng.randint(1, 8)
        for partitioner in (contiguous_groups, round_robin_groups):
            sizes = [len(group) for group in partitioner(members, num_groups)]
            assert max(sizes) - min(sizes) <= 1


class TestRegionGroups:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_region_grouping_respects_region_of(self, seed):
        rng = random.Random(seed)
        members = random_members(rng)
        regions = ("virginia", "california", "oregon", "tokyo")
        region_of = {
            member: rng.choice(regions)
            for member in members
            if rng.random() > 0.1  # some members have no region (leftovers)
        }
        groups = region_groups(members, region_of)
        flat = [member for group in groups for member in group]
        assert sorted(flat) == sorted(members)
        for group in groups:
            group_regions = {region_of.get(member) for member in group}
            assert len(group_regions) == 1  # one region per group (None = leftovers)
        present = {region_of[m] for m in members if m in region_of}
        leftovers = [m for m in members if m not in region_of]
        assert len(groups) == len(present) + (1 if leftovers else 0)


class TestRelayTrees:
    @pytest.mark.parametrize("seed", SEEDS[:12])
    @pytest.mark.parametrize("levels", (1, 2, 3))
    def test_trees_cover_every_member_exactly_once(self, seed, levels):
        rng = random.Random(seed)
        members = random_members(rng)
        num_groups = rng.randint(1, 6)
        plan = RelayGroupPlan(groups=round_robin_groups(members, num_groups))
        trees = plan.build_trees(rng, levels=levels)
        assert len(trees) == plan.num_groups
        covered = [node for tree in trees for node in tree.all_nodes()]
        assert sorted(covered) == sorted(members)
        assert len(covered) == len(set(covered))

    @pytest.mark.parametrize("seed", SEEDS[:12])
    def test_reshuffle_preserves_membership_and_sizes(self, seed):
        rng = random.Random(seed)
        members = random_members(rng)
        plan = RelayGroupPlan(groups=round_robin_groups(members, rng.randint(1, 6)))
        reshuffled = plan.reshuffle(rng)
        assert sorted(reshuffled.members) == sorted(members)
        assert [len(g) for g in reshuffled.groups] == [len(g) for g in plan.groups]

    def test_duplicate_membership_rejected(self):
        with pytest.raises(ConfigurationError):
            RelayGroupPlan(groups=[[1, 2], [2, 3]])

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError):
            RelayGroupPlan(groups=[[1], []])
