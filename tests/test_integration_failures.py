"""Failure-injection integration tests.

These exercise the fault-tolerance claims of Section 3.4 and the behaviour
behind Figure 13: follower failures only delay the affected relay group,
relay failures are healed by random re-selection and leader retries, and a
leader failure triggers a new election while the log stays consistent.
"""

from __future__ import annotations


from repro.cluster.builder import build_cluster
from repro.cluster.faults import FaultSchedule
from repro.core.config import PigPaxosConfig
from repro.workload.spec import WorkloadSpec

WORKLOAD = WorkloadSpec(num_keys=50)


class TestFollowerAndRelayFailures:
    def test_pigpaxos_keeps_committing_with_one_crashed_follower(self):
        schedule = FaultSchedule().crash(4, at=0.1)
        cluster = build_cluster(protocol="pigpaxos", num_nodes=9, num_clients=6, seed=21,
                                relay_groups=3, fault_schedule=schedule, workload=WORKLOAD)
        cluster.run(0.6)
        assert cluster.total_completed_requests() > 100
        assert cluster.logs_agree()

    def test_pigpaxos_survives_minority_crash(self):
        # 9 nodes tolerate 4 failures; crash 3 followers across groups.
        schedule = FaultSchedule().crash(3, at=0.1).crash(5, at=0.1).crash(7, at=0.1)
        cluster = build_cluster(protocol="pigpaxos", num_nodes=9, num_clients=6, seed=21,
                                relay_groups=3, fault_schedule=schedule, workload=WORKLOAD)
        cluster.run(0.8)
        assert cluster.total_completed_requests() > 50
        assert cluster.logs_agree()

    def test_throughput_recovers_after_follower_returns(self):
        schedule = FaultSchedule().crash_window(4, start=0.3, end=0.6)
        cluster = build_cluster(protocol="pigpaxos", num_nodes=9, num_clients=10, seed=21,
                                relay_groups=3, fault_schedule=schedule, workload=WORKLOAD)
        cluster.sim.metrics.timeseries("client.completions", interval=0.1)
        cluster.run(1.0)
        rates = dict(cluster.sim.metrics.timeseries("client.completions", interval=0.1).rates(end=1.0))
        during = rates.get(0.4, 0.0) + rates.get(0.5, 0.0)
        after = rates.get(0.8, 0.0) + rates.get(0.9, 0.0)
        assert after > 0
        assert during > 0  # a single follower failure does not halt progress

    def test_paxos_also_survives_follower_crash(self):
        schedule = FaultSchedule().crash(2, at=0.1)
        cluster = build_cluster(protocol="paxos", num_nodes=5, num_clients=6, seed=21,
                                fault_schedule=schedule, workload=WORKLOAD)
        cluster.run(0.6)
        assert cluster.total_completed_requests() > 100
        assert cluster.logs_agree()


class TestLeaderFailure:
    def test_new_leader_elected_after_crash(self):
        config = PigPaxosConfig(num_relay_groups=2, election_timeout_min=0.15,
                                election_timeout_max=0.3, heartbeat_interval=0.03)
        schedule = FaultSchedule().crash(0, at=0.3)
        cluster = build_cluster(protocol="pigpaxos", num_nodes=5, num_clients=4, seed=23,
                                protocol_config=config, fault_schedule=schedule, workload=WORKLOAD)
        cluster.run(2.5)
        new_leader = cluster.leader_id()
        assert new_leader is not None and new_leader != 0
        assert cluster.logs_agree()

    def test_clients_make_progress_after_failover(self):
        config = PigPaxosConfig(num_relay_groups=2, election_timeout_min=0.15,
                                election_timeout_max=0.3, heartbeat_interval=0.03)
        schedule = FaultSchedule().crash(0, at=0.3)
        cluster = build_cluster(protocol="pigpaxos", num_nodes=5, num_clients=4, seed=23,
                                protocol_config=config, fault_schedule=schedule, workload=WORKLOAD)
        cluster.sim.metrics.timeseries("client.completions", interval=0.5)
        cluster.run(3.0)
        rates = dict(cluster.sim.metrics.timeseries("client.completions", interval=0.5).rates(end=3.0))
        assert rates.get(2.5, 0.0) > 0  # requests complete well after the crash

    def test_recovered_old_leader_rejoins_as_follower(self):
        from repro.protocol.config import ProtocolConfig

        config = ProtocolConfig(election_timeout_min=0.15, election_timeout_max=0.3,
                                heartbeat_interval=0.03)
        schedule = FaultSchedule().crash_window(0, start=0.3, end=1.5)
        cluster = build_cluster(protocol="paxos", num_nodes=5, num_clients=4, seed=29,
                                protocol_config=config, fault_schedule=schedule, workload=WORKLOAD)
        cluster.run(3.0)
        assert cluster.leader_id() is not None
        assert cluster.logs_agree()
        old_leader = cluster.nodes[0].replica
        # The old leader either stays a follower or re-won with a higher ballot;
        # either way its log agrees (checked above) and it is not using the old ballot.
        assert old_leader.promised.round >= 1


class TestNetworkFaults:
    def test_message_drops_do_not_break_agreement(self):
        cluster = build_cluster(protocol="pigpaxos", num_nodes=5, num_clients=4, seed=31,
                                relay_groups=2, workload=WORKLOAD)
        cluster.network.faults.drop_probability = 0.02
        cluster.run(0.8)
        assert cluster.total_completed_requests() > 50
        assert cluster.logs_agree()

    def test_minority_partition_stalls_then_recovers(self):
        schedule = FaultSchedule().partition([[3, 4], [0, 1, 2]], at=0.2, until=0.5)
        cluster = build_cluster(protocol="paxos", num_nodes=5, num_clients=4, seed=31,
                                fault_schedule=schedule, workload=WORKLOAD)
        cluster.run(1.0)
        assert cluster.total_completed_requests() > 100
        assert cluster.logs_agree()
