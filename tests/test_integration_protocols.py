"""Integration tests: full simulated clusters running each protocol.

These drive the same stack the benchmarks use (builder -> nodes -> replicas
-> clients) and check the consensus guarantees the paper relies on: replicas
agree on the committed prefix, every committed command executes exactly once
in the same order, and clients get their answers.
"""

from __future__ import annotations

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.topologies import wan_topology
from repro.core.config import PigPaxosConfig
from repro.workload.spec import WorkloadSpec


def run_cluster(protocol, duration=0.5, **kwargs):
    kwargs.setdefault("num_nodes", 5)
    kwargs.setdefault("num_clients", 6)
    kwargs.setdefault("seed", 13)
    kwargs.setdefault("workload", WorkloadSpec(num_keys=50))
    cluster = build_cluster(protocol=protocol, **kwargs)
    cluster.run(duration)
    return cluster


class TestPaxosCluster:
    def test_progress_and_agreement(self):
        cluster = run_cluster("paxos")
        assert cluster.total_completed_requests() > 100
        assert cluster.logs_agree()
        assert cluster.leader_id() == 0

    def test_followers_execute_leader_prefix(self):
        cluster = run_cluster("paxos")
        leader = cluster.nodes[cluster.leader_id()].replica
        for node_id, node in cluster.nodes.items():
            if node_id == cluster.leader_id():
                continue
            follower = node.replica
            assert follower.log.executed_count > 0
            # Follower state is a prefix of the leader's: every executed slot matches.
            for entry in follower.log.entries():
                if entry.executed:
                    leader_entry = leader.log.get(entry.slot)
                    assert leader_entry is not None
                    assert getattr(leader_entry.command, "uid", None) == getattr(entry.command, "uid", None)

    def test_reads_and_writes_both_served(self):
        cluster = run_cluster("paxos", workload=WorkloadSpec(num_keys=10, read_ratio=0.5))
        leader = cluster.nodes[cluster.leader_id()].replica
        assert len(leader.store) > 0

    def test_larger_cluster_scales_down_throughput(self):
        small = run_cluster("paxos", num_nodes=5, num_clients=30, duration=0.4)
        large = run_cluster("paxos", num_nodes=15, num_clients=30, duration=0.4)
        assert large.total_completed_requests() < small.total_completed_requests()


class TestPigPaxosCluster:
    @pytest.mark.parametrize("relay_groups", [2, 3])
    def test_progress_and_agreement(self, relay_groups):
        cluster = run_cluster("pigpaxos", relay_groups=relay_groups)
        assert cluster.total_completed_requests() > 100
        assert cluster.logs_agree()

    def test_leader_sends_fewer_messages_than_paxos_leader(self):
        paxos = run_cluster("paxos", num_nodes=9, num_clients=10, duration=0.4)
        pig = run_cluster("pigpaxos", num_nodes=9, num_clients=10, duration=0.4, relay_groups=2)
        paxos_leader_out = paxos.sim.metrics.counter("node.0.messages_out").value
        pig_leader_out = pig.sim.metrics.counter("node.0.messages_out").value
        paxos_done = paxos.total_completed_requests()
        pig_done = pig.total_completed_requests()
        # Normalize by completed requests: Paxos leader sends ~N-1 messages per
        # request, PigPaxos only ~r.
        assert paxos_leader_out / paxos_done > 2.5 * (pig_leader_out / pig_done)

    def test_relay_load_spread_over_followers(self):
        cluster = run_cluster("pigpaxos", num_nodes=9, num_clients=10, relay_groups=2)
        follower_out = [
            cluster.sim.metrics.counter(f"node.{node_id}.messages_out").value
            for node_id in range(1, 9)
        ]
        # Random relay rotation: every follower relayed at least once, and no
        # follower does more than a few times the minimum.
        assert min(follower_out) > 0
        assert max(follower_out) < 5 * min(follower_out)

    def test_region_aligned_groups_on_wan(self):
        topology = wan_topology(num_nodes=9)
        cluster = build_cluster(protocol="pigpaxos", num_nodes=9, num_clients=5, seed=13,
                                topology=topology, use_region_groups=True,
                                workload=WorkloadSpec(num_keys=50))
        cluster.run(1.0)
        assert cluster.total_completed_requests() > 10
        leader = cluster.nodes[cluster.leader_id()].replica
        plan = leader.relay_group_plan()
        region_map = topology.region_map()
        for group in plan.groups:
            assert len({region_map[n] for n in group}) == 1  # one region per group

    def test_pigpaxos_outperforms_paxos_at_scale(self):
        paxos = run_cluster("paxos", num_nodes=15, num_clients=60, duration=0.4)
        pig = run_cluster("pigpaxos", num_nodes=15, num_clients=60, duration=0.4, relay_groups=2)
        assert pig.total_completed_requests() > 1.3 * paxos.total_completed_requests()

    def test_multi_level_relay_tree_still_correct(self):
        config = PigPaxosConfig(num_relay_groups=2, relay_levels=2)
        cluster = build_cluster(protocol="pigpaxos", num_nodes=13, num_clients=5, seed=13,
                                protocol_config=config, workload=WorkloadSpec(num_keys=50))
        cluster.run(0.5)
        assert cluster.total_completed_requests() > 50
        assert cluster.logs_agree()

    def test_partial_response_threshold_still_commits(self):
        config = PigPaxosConfig(num_relay_groups=2, group_response_threshold=0.6)
        cluster = build_cluster(protocol="pigpaxos", num_nodes=9, num_clients=5, seed=13,
                                protocol_config=config, workload=WorkloadSpec(num_keys=50))
        cluster.run(0.5)
        assert cluster.total_completed_requests() > 50
        assert cluster.logs_agree()


class TestEPaxosCluster:
    def test_progress_with_conflicting_workload(self):
        cluster = run_cluster("epaxos", workload=WorkloadSpec(num_keys=5))
        assert cluster.total_completed_requests() > 50

    def test_replicas_converge_on_executed_state(self):
        cluster = run_cluster("epaxos", duration=0.5, workload=WorkloadSpec(num_keys=10, read_ratio=0.0))
        # Let in-flight instances drain with no new client load.
        for client in cluster.clients:
            client.stop()
        cluster.sim.run(until=cluster.sim.now + 0.5)
        executed = [node.replica.graph.executed_count for node in cluster.nodes.values()]
        assert max(executed) - min(executed) <= max(2, 0.05 * max(executed))

    def test_fast_path_dominates_conflict_free_workload(self):
        cluster = run_cluster("epaxos", num_clients=3, workload=WorkloadSpec(num_keys=100_000))
        fast = cluster.sim.metrics.counter("epaxos.fast_path_commits").value
        slow = cluster.sim.metrics.counter("epaxos.slow_path_rounds").value
        assert fast > 10 * max(slow, 1)

    def test_slow_path_appears_with_tiny_keyspace(self):
        cluster = run_cluster("epaxos", num_clients=10, workload=WorkloadSpec(num_keys=2, read_ratio=0.0))
        assert cluster.sim.metrics.counter("epaxos.slow_path_rounds").value > 0
