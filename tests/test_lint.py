"""Tests for ``repro.lint``: every rule fires on a minimal bad snippet and
stays silent on the idiomatic good form, suppressions round-trip, and the
real tree self-checks clean."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import LintEngine, default_rules, parse_suppressions, repro_relpath
from repro.lint.rules import RULES

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def lint_snippet(source, relpath="sim/example.py", rules=None):
    engine = LintEngine(default_rules(rules), all_rules_active=rules is None)
    return engine.lint_source(textwrap.dedent(source), relpath)


def rule_ids(ctx):
    return sorted({finding.rule for finding in ctx.findings})


# ------------------------------------------------------------- no-wall-clock
class TestNoWallClock:
    def test_fires_on_time_time(self):
        ctx = lint_snippet(
            """
            import time
            t = time.time()
            """
        )
        assert rule_ids(ctx) == ["no-wall-clock"]
        assert ctx.findings[0].line == 3

    def test_fires_on_aliased_import(self):
        ctx = lint_snippet(
            """
            import time as clock
            t = clock.perf_counter()
            """
        )
        assert rule_ids(ctx) == ["no-wall-clock"]

    def test_fires_on_from_import(self):
        ctx = lint_snippet(
            """
            from time import monotonic
            t = monotonic()
            """
        )
        assert any(f.rule == "no-wall-clock" and f.line == 3 for f in ctx.findings)

    def test_fires_on_datetime_now(self):
        ctx = lint_snippet(
            """
            import datetime
            stamp = datetime.datetime.now()
            """
        )
        assert rule_ids(ctx) == ["no-wall-clock"]

    def test_silent_on_sim_clock(self):
        ctx = lint_snippet(
            """
            def handler(self):
                return self.ctx.now + self.config.timeout
            """
        )
        assert ctx.findings == []

    def test_silent_on_time_sleep(self):
        # sleep is banned by idiom elsewhere but is not a clock *read*.
        ctx = lint_snippet(
            """
            import time
            time.sleep(0.1)
            """
        )
        assert ctx.findings == []

    def test_bench_is_exempt(self):
        ctx = lint_snippet(
            """
            import time
            t = time.perf_counter()
            """,
            relpath="bench/harness.py",
        )
        assert ctx.findings == []


# --------------------------------------------------------- no-unseeded-random
class TestNoUnseededRandom:
    def test_fires_on_module_level_call(self):
        ctx = lint_snippet(
            """
            import random
            x = random.random()
            """
        )
        assert rule_ids(ctx) == ["no-unseeded-random"]

    def test_fires_on_from_import(self):
        ctx = lint_snippet("from random import choice\n")
        assert rule_ids(ctx) == ["no-unseeded-random"]

    def test_silent_on_random_random_class(self):
        ctx = lint_snippet(
            """
            import random
            rng = random.Random(7919)
            x = rng.random()
            """
        )
        assert ctx.findings == []

    def test_silent_on_passed_rng_annotation(self):
        ctx = lint_snippet(
            """
            import random

            def jitter(rng: random.Random) -> float:
                return rng.uniform(0.0, 1.0)
            """
        )
        assert ctx.findings == []


# ----------------------------------------------------- no-unordered-iteration
class TestNoUnorderedIteration:
    def test_fires_on_dict_items_loop(self):
        ctx = lint_snippet(
            """
            def fan_out(self, peers):
                for peer, addr in peers.items():
                    self.send(peer, addr)
            """,
            relpath="overlay/example.py",
        )
        assert rule_ids(ctx) == ["no-unordered-iteration"]

    def test_silent_on_sorted_items(self):
        ctx = lint_snippet(
            """
            def fan_out(self, peers):
                for peer, addr in sorted(peers.items()):
                    self.send(peer, addr)
            """,
            relpath="overlay/example.py",
        )
        assert ctx.findings == []

    def test_silent_on_order_insensitive_reducers(self):
        ctx = lint_snippet(
            """
            def tally(counters):
                total = sum(counters.values())
                biggest = max(counters.values())
                as_set = set(counters.keys())
                return total, biggest, as_set
            """,
            relpath="sim/example.py",
        )
        assert ctx.findings == []

    def test_silent_on_membership_test(self):
        ctx = lint_snippet(
            """
            def has(d, k):
                return k in d.keys()
            """,
            relpath="sim/example.py",
        )
        assert ctx.findings == []

    def test_fires_on_set_for_loop(self):
        ctx = lint_snippet(
            """
            def drain(self):
                pending = {1, 2, 3}
                for item in pending:
                    self.emit(item)
            """,
            relpath="net/example.py",
        )
        assert rule_ids(ctx) == ["no-unordered-iteration"]

    def test_fires_on_set_typed_attribute(self):
        ctx = lint_snippet(
            """
            from typing import Set

            class Tracker:
                def __init__(self):
                    self._waiting: Set[int] = set()

                def flush(self):
                    for node in self._waiting:
                        self.send(node)
            """,
            relpath="quorum/example.py",
        )
        assert rule_ids(ctx) == ["no-unordered-iteration"]

    def test_silent_on_sorted_set(self):
        ctx = lint_snippet(
            """
            def drain(self):
                pending = {3, 1, 2}
                for item in sorted(pending):
                    self.emit(item)
            """,
            relpath="net/example.py",
        )
        assert ctx.findings == []

    def test_set_names_are_scoped_per_function(self):
        # ``items`` is a set in one function and a list in another: the
        # list loop must not inherit the set's taint (regression: the real
        # tree's checkers reuse the name ``executed`` both ways).
        ctx = lint_snippet(
            """
            def collector():
                items = {1, 2}
                return sorted(items)

            def orderly():
                items = [1, 2]
                for item in items:
                    yield item
            """,
            relpath="sim/example.py",
        )
        assert ctx.findings == []

    def test_silent_outside_scoped_dirs(self):
        ctx = lint_snippet(
            """
            def fan_out(self, peers):
                for peer, addr in peers.items():
                    self.send(peer, addr)
            """,
            relpath="workload/example.py",
        )
        assert ctx.findings == []


# --------------------------------------------------------------- no-hash-order
class TestNoHashOrder:
    def test_fires_on_builtin_hash(self):
        ctx = lint_snippet(
            """
            def bucket(member, n):
                return hash(member) % n
            """,
            relpath="overlay/example.py",
        )
        assert rule_ids(ctx) == ["no-hash-order"]

    def test_silent_on_crc32(self):
        ctx = lint_snippet(
            """
            import zlib

            def bucket(member, n):
                return zlib.crc32(str(member).encode()) % n
            """,
            relpath="overlay/example.py",
        )
        assert ctx.findings == []

    def test_silent_outside_sim_scope(self):
        ctx = lint_snippet(
            """
            def bucket(member, n):
                return hash(member) % n
            """,
            relpath="analysis/example.py",
        )
        assert ctx.findings == []


# ----------------------------------------------------------- wire-type-hygiene
class TestWireTypeHygiene:
    def test_fires_on_missing_slots(self):
        ctx = lint_snippet(
            """
            class Ping:
                def __init__(self, ballot):
                    self.ballot = ballot
            """,
            relpath="protocol/messages.py",
        )
        assert rule_ids(ctx) == ["wire-type-hygiene"]

    def test_fires_on_unpriced_payload(self):
        ctx = lint_snippet(
            """
            class Message:
                __slots__ = ()

            class Propose(Message):
                __slots__ = ("command",)

                def __init__(self, command):
                    self.command = command
            """,
            relpath="protocol/messages.py",
        )
        findings = [f for f in ctx.findings if "payload_bytes" in f.message]
        assert len(findings) == 1 and findings[0].rule == "wire-type-hygiene"

    def test_silent_on_slotted_and_priced(self):
        ctx = lint_snippet(
            """
            class Message:
                __slots__ = ()

            class Propose(Message):
                __slots__ = ("command",)

                def __init__(self, command):
                    self.command = command

                def payload_bytes(self):
                    return self.command.payload_bytes()
            """,
            relpath="protocol/messages.py",
        )
        assert ctx.findings == []

    def test_inherited_payload_bytes_counts(self):
        ctx = lint_snippet(
            """
            class Message:
                __slots__ = ()

            class Base(Message):
                __slots__ = ("command",)

                def payload_bytes(self):
                    return 8

            class Derived(Base):
                __slots__ = ()

                def __init__(self, command):
                    self.command = command
            """,
            relpath="overlay/messages.py",
        )
        assert ctx.findings == []

    def test_dataclass_slots_satisfies_slots(self):
        ctx = lint_snippet(
            """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Ping:
                ballot: int
            """,
            relpath="protocol/messages.py",
        )
        assert ctx.findings == []

    def test_silent_outside_message_modules(self):
        ctx = lint_snippet(
            """
            class Helper:
                def __init__(self):
                    self.cache = {}
            """,
            relpath="sim/example.py",
        )
        assert ctx.findings == []


# ----------------------------------------- no-frozen-dataclass-hot-path
class TestNoFrozenDataclassHotPath:
    def test_fires_on_frozen_dataclass(self):
        ctx = lint_snippet(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class P2a:
                ballot: int
            """,
            relpath="protocol/messages.py",
        )
        assert "no-frozen-dataclass-hot-path" in rule_ids(ctx)

    def test_silent_on_plain_dataclass(self):
        ctx = lint_snippet(
            """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class P2a:
                ballot: int
            """,
            relpath="protocol/messages.py",
        )
        assert ctx.findings == []

    def test_frozen_fine_outside_hot_modules(self):
        ctx = lint_snippet(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Violation:
                message: str
            """,
            relpath="checkers/example.py",
        )
        assert ctx.findings == []


# ------------------------------------------------------------ scenario-hygiene
class TestScenarioHygiene:
    def test_fires_on_missing_checks_and_floor(self):
        ctx = lint_snippet(
            """
            s = Scenario(name="bad", protocol="paxos", num_nodes=5)
            """,
            relpath="scenarios/library.py",
        )
        messages = " ".join(f.message for f in ctx.findings)
        assert "does not declare checks" in messages
        assert "min_completed" in messages

    def test_fires_on_empty_checks(self):
        ctx = lint_snippet(
            """
            s = Scenario(name="bad", checks=(), min_completed=10)
            """,
            relpath="scenarios/library.py",
        )
        assert any("empty checks" in f.message for f in ctx.findings)

    def test_fires_on_floor_without_progress_check(self):
        ctx = lint_snippet(
            """
            s = Scenario(name="bad", checks=("linearizability",), min_completed=10)
            """,
            relpath="scenarios/library.py",
        )
        assert any("floor would be inert" in f.message for f in ctx.findings)

    def test_silent_on_full_declaration(self):
        ctx = lint_snippet(
            """
            NAMES = ("linearizability", "log_invariants")
            s = Scenario(
                name="good",
                checks=NAMES + ("progress",),
                min_completed=100,
            )
            """,
            relpath="scenarios/library.py",
        )
        assert ctx.findings == []

    def test_silent_outside_library(self):
        ctx = lint_snippet(
            """
            s = Scenario(name="adhoc", protocol="paxos")
            """,
            relpath="fuzz/example.py",
        )
        assert ctx.findings == []


# ------------------------------------------------------- counter-name-registry
class TestCounterNameRegistry:
    def test_fires_on_typod_replica_counter(self):
        ctx = lint_snippet(
            """
            def commit(self):
                self.count("slots_comitted")
            """,
            relpath="paxos/example.py",
        )
        assert rule_ids(ctx) == ["counter-name-registry"]

    def test_silent_on_known_replica_counter(self):
        ctx = lint_snippet(
            """
            def commit(self):
                self.count("slots_committed")
            """,
            relpath="paxos/example.py",
        )
        assert ctx.findings == []

    def test_fires_on_unknown_metric_name(self):
        ctx = lint_snippet(
            """
            def record(metrics):
                metrics.counter("net.bogus_counter").increment()
            """,
            relpath="net/example.py",
        )
        assert rule_ids(ctx) == ["counter-name-registry"]

    def test_silent_on_known_metric_and_prefix_family(self):
        ctx = lint_snippet(
            """
            def record(metrics):
                metrics.counter("net.messages_sent").increment()
                metrics.counter("net.sent.P2a").increment()
            """,
            relpath="net/example.py",
        )
        assert ctx.findings == []

    def test_silent_on_str_count(self):
        ctx = lint_snippet(
            """
            def tally(text):
                return "abc".count("a") + text.strip().count("b")
            """,
            relpath="sim/example.py",
        )
        assert ctx.findings == []


# -------------------------------------------------------- suppression handling
class TestSuppressions:
    def test_same_line_suppression_round_trip(self):
        bad = """
        import time
        t = time.time()
        """
        assert rule_ids(lint_snippet(bad)) == ["no-wall-clock"]
        good = """
        import time
        t = time.time()  # lint: ok(no-wall-clock) testing the escape hatch
        """
        ctx = lint_snippet(good)
        assert ctx.findings == []
        assert len(ctx.suppressions) == 1 and ctx.suppressions[0].used

    def test_comment_line_above_targets_next_line(self):
        ctx = lint_snippet(
            """
            import time
            # lint: ok(no-wall-clock) testing the comment-only form
            t = time.time()
            """
        )
        assert ctx.findings == []

    def test_reasonless_suppression_is_a_finding(self):
        ctx = lint_snippet(
            """
            import time
            t = time.time()  # lint: ok(no-wall-clock)
            """
        )
        assert rule_ids(ctx) == ["suppression-hygiene"]
        assert "no written reason" in ctx.findings[0].message

    def test_unknown_rule_id_is_a_finding(self):
        ctx = lint_snippet(
            """
            x = 1  # lint: ok(no-such-rule) believe me
            """
        )
        assert rule_ids(ctx) == ["suppression-hygiene"]
        assert "unknown rule" in ctx.findings[0].message

    def test_stale_suppression_is_a_finding(self):
        ctx = lint_snippet(
            """
            x = 1  # lint: ok(no-wall-clock) nothing here reads a clock
            """
        )
        assert rule_ids(ctx) == ["suppression-hygiene"]
        assert "stale" in ctx.findings[0].message

    def test_stale_not_reported_under_rule_filter(self):
        # With only one rule active a suppression for another rule cannot
        # be proven stale, so it must not be flagged.
        ctx = lint_snippet(
            """
            x = 1  # lint: ok(no-wall-clock) target rule not active
            """,
            rules=["no-unseeded-random", "suppression-hygiene"],
        )
        assert ctx.findings == []

    def test_suppression_inside_string_is_not_parsed(self):
        suppressions = parse_suppressions(
            "sim/example.py",
            'HINT = "silence with # lint: ok(no-wall-clock) reason"\n',
        )
        assert suppressions == []


# ------------------------------------------------------------------- framework
class TestFramework:
    def test_parse_error_is_reported(self):
        ctx = lint_snippet("def broken(:\n")
        assert rule_ids(ctx) == ["parse-error"]

    def test_repro_relpath(self):
        assert repro_relpath(Path("src/repro/sim/metrics.py")) == "sim/metrics.py"
        assert repro_relpath(Path("/a/b/repro/net/faults.py")) == "net/faults.py"
        assert repro_relpath(Path("elsewhere/module.py")) == "module.py"

    def test_unknown_rule_filter_raises(self):
        with pytest.raises(ValueError):
            default_rules(["no-such-rule"])

    def test_every_rule_has_id_title_contract(self):
        for rule_id, rule_cls in RULES.items():
            assert rule_cls.id == rule_id
            assert rule_cls.title
            assert rule_cls.contract


# ------------------------------------------------------------------ self-check
class TestSelfCheck:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )

    def test_tree_is_clean(self):
        result = self.run_cli("src/repro")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    def test_every_suppression_has_a_reason(self):
        result = self.run_cli("src/repro", "--list-suppressions")
        assert result.returncode == 0
        assert "<NO REASON>" not in result.stdout

    def test_json_output_is_valid(self):
        result = self.run_cli("src/repro", "--json")
        assert result.returncode == 0
        assert json.loads(result.stdout) == []

    def test_findings_gate_exit_code(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        result = self.run_cli(str(bad))
        assert result.returncode == 1
        assert "no-wall-clock" in result.stdout

    def test_usage_error_exit_code(self):
        assert self.run_cli().returncode == 2
        assert self.run_cli("--rule", "no-such-rule", "src/repro").returncode == 2
