"""Unit tests for the network substrate: latency, topology, faults, delivery."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.net.faults import NetworkFaults
from repro.net.latency import (
    DEFAULT_WAN_MATRIX,
    ConstantLatency,
    NormalLatency,
    UniformLatency,
    WANMatrixLatency,
)
from repro.net.message import Envelope, Message
from repro.net.network import SimNetwork
from repro.net.sizes import SizeModel
from repro.net.topology import Region, Topology
from repro.sim.engine import Simulator


class _Probe(Message):
    """A test message with an adjustable payload size."""

    def __init__(self, payload: int = 0) -> None:
        self._payload = payload

    def payload_bytes(self) -> int:
        return self._payload


class _Sink:
    """A trivially reachable endpoint that records deliveries."""

    def __init__(self, endpoint_id: int, reachable: bool = True) -> None:
        self.endpoint_id = endpoint_id
        self.reachable = reachable
        self.received = []

    def deliver(self, envelope: Envelope) -> None:
        self.received.append(envelope)

    def is_reachable(self) -> bool:
        return self.reachable


class TestLatencyModels:
    def test_constant_latency_zero_for_self(self):
        model = ConstantLatency(one_way=0.001)
        rng = random.Random(0)
        assert model.delay(1, 1, rng) == 0.0
        assert model.delay(1, 2, rng) == 0.001

    def test_uniform_latency_within_bounds(self):
        model = UniformLatency(low=0.001, high=0.002)
        rng = random.Random(0)
        for _ in range(50):
            assert 0.001 <= model.delay(0, 1, rng) <= 0.002

    def test_uniform_latency_validates_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(low=0.002, high=0.001)

    def test_normal_latency_has_floor(self):
        model = NormalLatency(mean=0.0001, stddev=0.01, floor=0.00005)
        rng = random.Random(1)
        assert all(model.delay(0, 1, rng) >= 0.00005 for _ in range(100))

    def test_wan_matrix_symmetric_lookup(self):
        model = WANMatrixLatency(node_region={0: "virginia", 1: "oregon"}, jitter=0.0)
        rng = random.Random(0)
        assert model.delay(0, 1, rng) == model.delay(1, 0, rng)
        assert model.delay(0, 1, rng) == DEFAULT_WAN_MATRIX[("virginia", "oregon")]

    def test_wan_matrix_intra_region_is_local(self):
        model = WANMatrixLatency(node_region={0: "virginia", 1: "virginia"}, jitter=0.0)
        assert model.base_delay(0, 1) == DEFAULT_WAN_MATRIX[("virginia", "virginia")]

    def test_wan_matrix_unknown_endpoint_treated_as_local(self):
        model = WANMatrixLatency(node_region={0: "virginia"}, jitter=0.0)
        assert model.base_delay(0, 999) == model.local_one_way

    def test_wan_cross_region_much_larger_than_local(self):
        model = WANMatrixLatency(node_region={0: "virginia", 1: "california"}, jitter=0.0)
        assert model.base_delay(0, 1) > 50 * model.local_one_way


class TestTopology:
    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(node_ids=[0, 0, 1])

    def test_empty_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(node_ids=[])

    def test_region_lookup(self):
        topology = Topology(
            node_ids=[0, 1, 2],
            regions=[Region("east", (0, 1)), Region("west", (2,))],
        )
        assert topology.region_of(0) == "east"
        assert topology.region_of(2) == "west"
        assert topology.region_map() == {0: "east", 1: "east", 2: "west"}
        assert topology.nodes_in_region("east") == [0, 1]

    def test_node_in_two_regions_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(node_ids=[0, 1], regions=[Region("a", (0,)), Region("b", (0, 1))])

    def test_transmission_delay_scales_with_size(self):
        topology = Topology(node_ids=[0, 1], bandwidth_bytes_per_sec=1000.0)
        assert topology.transmission_delay(500) == pytest.approx(0.5)
        no_bandwidth = Topology(node_ids=[0, 1], bandwidth_bytes_per_sec=None)
        assert no_bandwidth.transmission_delay(500) == 0.0


class TestNetworkFaults:
    def test_severed_link_blocks_both_directions(self):
        faults = NetworkFaults()
        faults.sever_link(1, 2)
        rng = random.Random(0)
        assert faults.should_drop(1, 2, rng)
        assert faults.should_drop(2, 1, rng)
        faults.heal_link(1, 2)
        assert not faults.should_drop(1, 2, rng)

    def test_partition_blocks_across_groups_only(self):
        faults = NetworkFaults()
        faults.partition([0, 1], [2, 3])
        rng = random.Random(0)
        assert faults.should_drop(0, 2, rng)
        assert not faults.should_drop(0, 1, rng)
        assert not faults.should_drop(2, 3, rng)
        # node 4 is unmentioned, talks to everyone
        assert not faults.should_drop(0, 4, rng)
        faults.heal_partition()
        assert not faults.should_drop(0, 2, rng)

    def test_drop_probability_validated(self):
        with pytest.raises(ValueError):
            NetworkFaults(drop_probability=1.5)

    def test_random_drops_respect_probability(self):
        faults = NetworkFaults(drop_probability=0.5)
        rng = random.Random(7)
        drops = sum(faults.should_drop(0, 1, rng) for _ in range(2000))
        assert 800 < drops < 1200

    def test_active_faults_snapshot(self):
        faults = NetworkFaults(drop_probability=0.1)
        faults.sever_link(3, 4)
        faults.partition([0], [1])
        snapshot = faults.active_faults()
        assert snapshot["drop_probability"] == 0.1
        assert (3, 4) in snapshot["severed_links"]
        assert [0] in snapshot["partitions"]


class TestSizeModel:
    def test_header_plus_payload(self):
        model = SizeModel(header_bytes=64)
        assert model.size_of(_Probe(payload=100)) == 164
        assert model.size_of(_Probe(payload=0)) == 64

    def test_object_without_payload_method(self):
        model = SizeModel(header_bytes=32)
        assert model.size_of(object()) == 32


class TestSimNetwork:
    def _network(self, drop_probability: float = 0.0):
        sim = Simulator(seed=1)
        topology = Topology(node_ids=[0, 1], latency=ConstantLatency(0.001))
        network = SimNetwork(sim, topology, faults=NetworkFaults(drop_probability))
        return sim, network

    def test_message_delivered_after_latency(self):
        sim, network = self._network()
        sink = _Sink(1)
        network.register(_Sink(0))
        network.register(sink)
        network.send(0, 1, _Probe())
        sim.run()
        assert len(sink.received) == 1
        assert sim.now >= 0.001

    def test_send_to_unknown_endpoint_raises(self):
        _, network = self._network()
        with pytest.raises(NetworkError):
            network.send(0, 99, _Probe())

    def test_duplicate_registration_rejected(self):
        _, network = self._network()
        network.register(_Sink(0))
        with pytest.raises(NetworkError):
            network.register(_Sink(0))

    def test_unreachable_endpoint_blackholes(self):
        sim, network = self._network()
        network.register(_Sink(0))
        down = _Sink(1, reachable=False)
        network.register(down)
        network.send(0, 1, _Probe())
        sim.run()
        assert down.received == []
        assert sim.metrics.counter("net.messages_undeliverable").value == 1

    def test_dropped_messages_counted(self):
        sim, network = self._network(drop_probability=0.999)
        network.register(_Sink(0))
        sink = _Sink(1)
        network.register(sink)
        for _ in range(20):
            network.send(0, 1, _Probe())
        sim.run()
        assert sim.metrics.counter("net.messages_dropped").value > 0

    def test_bytes_and_kind_counters(self):
        sim, network = self._network()
        network.register(_Sink(0))
        network.register(_Sink(1))
        network.send(0, 1, _Probe(payload=36))
        sim.run()
        assert sim.metrics.counter("net.bytes_sent").value == 100
        assert sim.metrics.counter("net.sent._Probe").value == 1

    def test_larger_messages_take_longer(self):
        sim = Simulator(seed=1)
        topology = Topology(node_ids=[0, 1], latency=ConstantLatency(0.0), bandwidth_bytes_per_sec=1000.0)
        network = SimNetwork(sim, topology)
        sink = _Sink(1)
        network.register(_Sink(0))
        network.register(sink)
        network.send(0, 1, _Probe(payload=936))  # 1000 bytes on the wire
        sim.run()
        assert sim.now == pytest.approx(1.0)
