"""Unit tests for the fan-out overlay layer (repro.overlay).

Covers the three strategies through their protocol hosts: direct broadcast
equivalence, EPaxos rounds travelling through relay trees (including relay
crashes and late replies), deep-tree resilience (recursive commit fallback
at interior relays, zone-preserving mid-round reshuffles), thrifty subset
sends with the full-broadcast fallback, configuration plumbing through
ProtocolConfig/ClusterBuilder, and the scenario-level mutation test:
disabling the thrifty fallback must be caught by the scenario checkers
(the ``progress`` liveness floor).
"""

from __future__ import annotations

import pytest

from helpers import FakeContext
from repro.cluster.builder import ClusterBuilder, build_cluster
from repro.epaxos.messages import ECommit, EPreAccept, EPreAcceptReply
from repro.epaxos.replica import EPaxosReplica
from repro.errors import ConfigurationError
from repro.overlay import (
    DirectFanout,
    HierarchicalGroupPlan,
    OverlayConfig,
    RelayAggregate,
    RelayFanout,
    RelayRequest,
    RelaySubtree,
    ThriftyFanout,
    build_overlay,
)
from repro.protocol.config import ProtocolConfig
from repro.protocol.messages import ClientRequest
from repro.scenarios import get_scenario, run_scenario
from repro.sim.metrics import bottleneck_node, node_traffic, sent_by_kind
from repro.statemachine.command import Command, OpType


def epaxos_replica(overlay=None, node_id=0, cluster=5):
    ctx = FakeContext(node_id=node_id, all_nodes=list(range(cluster)))
    replica = EPaxosReplica(overlay=overlay)
    replica.bind(ctx)
    replica.start()
    return replica, ctx


def request(key="k", client_id=1000, request_id=1) -> ClientRequest:
    return ClientRequest(
        command=Command(op=OpType.PUT, key=key, payload_size=8, client_id=client_id, request_id=request_id)
    )


class TestOverlayConfig:
    def test_coerce_accepts_kind_string_and_mapping(self):
        assert OverlayConfig.coerce("relay").kind == "relay"
        cfg = OverlayConfig.coerce({"kind": "thrifty", "thrifty_fallback_timeout": 0.2})
        assert cfg.kind == "thrifty" and cfg.thrifty_fallback_timeout == 0.2
        assert OverlayConfig.coerce(None) is None
        same = OverlayConfig(kind="relay")
        assert OverlayConfig.coerce(same) is same

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            OverlayConfig(kind="telepathy")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            OverlayConfig(num_groups=0)
        with pytest.raises(ConfigurationError):
            OverlayConfig(relay_timeout=0.0)
        with pytest.raises(ConfigurationError):
            OverlayConfig(thrifty_fallback_timeout=-1.0)

    def test_factory_builds_each_kind(self):
        assert isinstance(build_overlay(None), DirectFanout)
        assert isinstance(build_overlay(OverlayConfig(kind="relay")), RelayFanout)
        assert isinstance(build_overlay(OverlayConfig(kind="thrifty")), ThriftyFanout)

    def test_protocol_config_coerces_overlay_mapping(self):
        config = ProtocolConfig(overlay={"kind": "relay", "num_groups": 2})
        assert isinstance(config.overlay, OverlayConfig)
        assert config.overlay.num_groups == 2

    def test_overlays_cannot_be_shared_between_replicas(self):
        overlay = DirectFanout()
        EPaxosReplica(overlay=overlay)
        with pytest.raises(RuntimeError):
            EPaxosReplica(overlay=overlay)


class TestDirectFanout:
    def test_wide_cast_reaches_every_peer(self):
        replica, ctx = epaxos_replica()
        replica.on_message(1000, request())
        preaccepts = ctx.sent_of_type(EPreAccept)
        assert sorted(dst for dst, _ in preaccepts) == [1, 2, 3, 4]


class TestEPaxosRelayFanout:
    def test_preaccept_travels_through_relay_trees(self):
        replica, ctx = epaxos_replica(overlay=RelayFanout(num_groups=2))
        replica.on_message(1000, request())
        requests = ctx.sent_of_type(RelayRequest)
        assert len(requests) == 2  # one relay per group
        covered = set()
        for dst, message in requests:
            assert isinstance(message.inner, EPreAccept)
            covered.add(dst)
            covered.update(node for child in message.children for node in child.all_nodes())
        assert covered == {1, 2, 3, 4}

    def test_relay_aggregates_subtree_votes(self):
        # Node 1 acts as relay for a PreAccept round led by node 0.
        relay, ctx = epaxos_replica(overlay=RelayFanout(), node_id=1)
        inner = EPreAccept(instance=(0, 1), command=request().command, seq=1, deps=frozenset())
        from repro.overlay.messages import RelaySubtree

        relay.on_message(0, RelayRequest(
            inner=inner, children=(RelaySubtree(2), RelaySubtree(3)), agg_id=7, timeout=0.05,
        ))
        # The relay forwarded to both children and opened a session holding
        # its own vote.
        forwarded = ctx.sent_of_type(RelayRequest)
        assert sorted(dst for dst, _ in forwarded) == [2, 3]
        assert relay.overlay.open_sessions == 1

        # Children's votes arrive; the relay flushes one aggregate with all
        # three votes (its own + both children's) to the fan-out root.
        for child in (2, 3):
            vote = EPreAcceptReply(instance=(0, 1), voter=child, ok=True,
                                   seq=1, deps=frozenset(), changed=False)
            relay.on_message(child, RelayAggregate(agg_id=7, responses=(vote,), origin=child))
        aggregates = ctx.sent_of_type(RelayAggregate)
        assert len(aggregates) == 1
        dst, aggregate = aggregates[0]
        assert dst == 0 and aggregate.complete
        assert len(aggregate.responses) == 3
        assert {r.voter for r in aggregate.responses} == {1, 2, 3}

    def test_relay_timeout_flushes_partial_then_forwards_late_votes(self):
        # A child crashes (never replies): the relay flushes a partial
        # aggregate at its timeout, and still forwards the straggler's vote
        # towards the root when it finally arrives.
        relay, ctx = epaxos_replica(overlay=RelayFanout(), node_id=1)
        inner = EPreAccept(instance=(0, 1), command=request().command, seq=1, deps=frozenset())
        from repro.overlay.messages import RelaySubtree

        relay.on_message(0, RelayRequest(
            inner=inner, children=(RelaySubtree(2), RelaySubtree(3)), agg_id=9, timeout=0.05,
        ))
        timers = [t for t in ctx.pending_timers() if t.callback == relay.overlay._session_timeout]
        assert len(timers) == 1
        timers[0].fire()

        aggregates = ctx.sent_of_type(RelayAggregate)
        assert len(aggregates) == 1
        assert not aggregates[0][1].complete  # partial flush
        assert {r.voter for r in aggregates[0][1].responses} == {1}
        assert ctx.metrics.counter("epaxos.relay_timeouts").value == 1

        # The late child vote is forwarded, not swallowed.
        late = EPreAcceptReply(instance=(0, 1), voter=3, ok=True,
                               seq=1, deps=frozenset(), changed=False)
        relay.on_message(3, RelayAggregate(agg_id=9, responses=(late,), origin=3))
        aggregates = ctx.sent_of_type(RelayAggregate)
        assert len(aggregates) == 2
        assert aggregates[1][0] == 0
        assert {r.voter for r in aggregates[1][1].responses} == {3}
        assert ctx.metrics.counter("epaxos.late_responses_forwarded").value == 1

    def test_root_unwraps_aggregated_votes_and_commits_fast_path(self):
        replica, ctx = epaxos_replica(overlay=RelayFanout(num_groups=2))
        replica.on_message(1000, request())
        (instance_id, instance), = replica.instances.items()
        votes = tuple(
            EPreAcceptReply(instance=instance_id, voter=voter, ok=True,
                            seq=instance.seq, deps=instance.deps, changed=False)
            for voter in (1, 2)
        )
        agg_id = ctx.sent_of_type(RelayRequest)[0][1].agg_id
        replica.on_message(1, RelayAggregate(agg_id=agg_id, responses=votes, origin=1))
        assert instance.status in ("committed", "executed")
        assert ctx.metrics.counter("epaxos.fast_path_commits").value == 1
        # Commit notifications fan out through relay trees too.
        commit_wrappers = [
            (dst, m) for dst, m in ctx.sent_of_type(RelayRequest) if isinstance(m.inner, ECommit)
        ]
        assert commit_wrappers and all(not m.expects_response for _, m in commit_wrappers)

    def test_duplicate_relay_request_does_not_clobber_session(self):
        # The network may re-deliver a RelayRequest (duplicate storm).  The
        # duplicate must not replace the in-flight session -- that would
        # discard already-collected child votes and leave the old session's
        # timer armed to flush the replacement prematurely.
        relay, ctx = epaxos_replica(overlay=RelayFanout(), node_id=1)
        inner = EPreAccept(instance=(0, 1), command=request().command, seq=1, deps=frozenset())
        from repro.overlay.messages import RelaySubtree

        wrapped = RelayRequest(inner=inner, children=(RelaySubtree(2), RelaySubtree(3)),
                               agg_id=13, timeout=0.05)
        relay.on_message(0, wrapped)
        vote = EPreAcceptReply(instance=(0, 1), voter=2, ok=True,
                               seq=1, deps=frozenset(), changed=False)
        relay.on_message(2, RelayAggregate(agg_id=13, responses=(vote,), origin=2))

        relay.on_message(0, wrapped)  # duplicate delivery
        assert ctx.metrics.counter("epaxos.duplicate_relay_requests_ignored").value == 1
        assert relay.overlay.open_sessions == 1
        # The collected child vote survived: the second child's reply now
        # completes the round with all three votes.
        relay.on_message(3, RelayAggregate(agg_id=13, responses=(
            EPreAcceptReply(instance=(0, 1), voter=3, ok=True,
                            seq=1, deps=frozenset(), changed=False),), origin=3))
        aggregates = ctx.sent_of_type(RelayAggregate)
        assert len(aggregates) == 1
        assert aggregates[0][1].complete
        assert {r.voter for r in aggregates[0][1].responses} == {1, 2, 3}

    def test_crash_clears_relay_sessions(self):
        relay, ctx = epaxos_replica(overlay=RelayFanout(), node_id=1)
        inner = EPreAccept(instance=(0, 1), command=request().command, seq=1, deps=frozenset())
        from repro.overlay.messages import RelaySubtree

        relay.on_message(0, RelayRequest(inner=inner, children=(RelaySubtree(2),), agg_id=11, timeout=0.05))
        assert relay.overlay.open_sessions == 1
        relay.on_crash()
        assert relay.overlay.open_sessions == 0

    def test_reshuffle_redeals_groups(self):
        replica, ctx = epaxos_replica(overlay=RelayFanout(num_groups=2))
        before = [list(g) for g in replica.overlay.plan().groups]
        for _ in range(10):
            replica.reshuffle_groups()
            after = [list(g) for g in replica.overlay.plan().groups]
            if after != before:
                break
        else:
            pytest.fail("reshuffle never changed the group layout")
        assert ctx.metrics.counter("epaxos.group_reshuffles").value >= 1


def commit_notification() -> ECommit:
    return ECommit(instance=(0, 1), command=request().command, seq=1, deps=frozenset())


class TestDeepRelayResilience:
    """Depth > 1 behaviour: recursive commit fallback and zone-aware plans.

    An interior relay (depth 1+) that forwards a fire-and-forget fan-out
    runs the same ack/deadline/resend-subtree protocol towards its own
    sub-relays that the root runs towards it, so a deep sub-relay crash
    heals at the lowest live ancestor.  These tests drive one interior
    relay directly through FakeContext and pin the per-depth counters.
    """

    @staticmethod
    def interior_relay(**overlay_kwargs):
        overlay = RelayFanout(commit_fallback_timeout=0.25, **overlay_kwargs)
        return epaxos_replica(overlay=overlay, node_id=1, cluster=9)

    @staticmethod
    def deep_request(ack=True, depth=1, agg_id=7):
        # Node 2 is a sub-relay covering {2, 3, 4}; node 5 is a plain leaf.
        return RelayRequest(
            inner=commit_notification(),
            children=(
                RelaySubtree(2, children=(RelaySubtree(3), RelaySubtree(4))),
                RelaySubtree(5),
            ),
            agg_id=agg_id,
            timeout=0.05,
            expects_response=False,
            ack=ack,
            depth=depth,
        )

    def test_interior_relay_acks_parent_and_covers_sub_relays(self):
        relay, ctx = self.interior_relay()
        relay.on_message(0, self.deep_request())

        # The sub-relay is forwarded with an ack demand, the leaf without;
        # both see the depth incremented for the next level's counters.
        forwarded = {dst: m for dst, m in ctx.sent_of_type(RelayRequest)}
        assert set(forwarded) == {2, 5}
        assert forwarded[2].ack and forwarded[2].depth == 2
        assert not forwarded[5].ack and forwarded[5].depth == 2
        # The relay itself acked its parent immediately (liveness signal).
        acks = ctx.sent_of_type(RelayAggregate)
        assert acks == [(0, acks[0][1])] and acks[0][1].origin == 1
        # And armed a depth-1 commit round over the one sub-relay.
        timers = [t for t in ctx.pending_timers()
                  if t.callback == relay.overlay._commit_fallback]
        assert len(timers) == 1 and timers[0].delay == 0.25
        assert ctx.metrics.counter("epaxos.relay.depth.1.ack_rounds").value == 1

    def test_sub_relay_ack_disarms_the_fallback(self):
        relay, ctx = self.interior_relay()
        relay.on_message(0, self.deep_request())
        relay.on_message(2, RelayAggregate(agg_id=7, responses=(), origin=2))
        timers = [t for t in ctx.timers
                  if t.callback == relay.overlay._commit_fallback]
        assert timers[0].cancelled
        assert ctx.metrics.counter("epaxos.relay.depth.1.acks").value == 1
        assert ctx.metrics.counter("epaxos.commit_fallbacks").value == 0

    def test_silent_sub_relay_subtree_is_resent_directly(self):
        relay, ctx = self.interior_relay()
        relay.on_message(0, self.deep_request())
        ctx.clear_sent()

        timers = [t for t in ctx.pending_timers()
                  if t.callback == relay.overlay._commit_fallback]
        timers[0].fire()
        # The whole silent subtree {2, 3, 4} gets a direct copy; the leaf 5
        # owed no ack and is not re-sent.
        resent = ctx.sent_of_type(ECommit)
        assert sorted(dst for dst, _ in resent) == [2, 3, 4]
        assert ctx.metrics.counter("epaxos.relay.depth.1.fallbacks").value == 1
        assert ctx.metrics.counter("epaxos.relay.depth.1.fallback_resends").value == 3
        assert ctx.metrics.counter("epaxos.commit_fallbacks").value == 1

    def test_duplicate_commit_request_reacks_without_new_round(self):
        # Re-delivery must re-ack (the parent may have missed the first ack)
        # but never open a second commit round for the same fan-out.
        relay, ctx = self.interior_relay()
        relay.on_message(0, self.deep_request())
        relay.on_message(0, self.deep_request())
        acks = [m for dst, m in ctx.sent_of_type(RelayAggregate) if dst == 0]
        assert len(acks) == 2
        assert ctx.metrics.counter("epaxos.relay.depth.1.ack_rounds").value == 1

    def test_disabled_recursion_keeps_first_hop_only_protocol(self):
        # The ablation knob: interior relays forward ack-free and arm no
        # round of their own -- a deep sub-relay crash is invisible to them
        # (exactly what the deep-relay-crash mutation scenario measures).
        relay, ctx = self.interior_relay(recursive_commit_fallback=False)
        relay.on_message(0, self.deep_request())
        forwarded = {dst: m for dst, m in ctx.sent_of_type(RelayRequest)}
        assert not forwarded[2].ack and not forwarded[5].ack
        assert [t for t in ctx.pending_timers()
                if t.callback == relay.overlay._commit_fallback] == []
        # The parent still gets its own-liveness ack.
        assert [dst for dst, _ in ctx.sent_of_type(RelayAggregate)] == [0]

    def test_region_groups_without_region_map_rejected(self):
        # Satellite regression: requesting region-aligned groups on a
        # topology with no region map must fail loudly at build time, not
        # silently degrade to round-robin groups.
        with pytest.raises(ConfigurationError, match="region map"):
            RelayFanout(use_region_groups=True)
        with pytest.raises(ConfigurationError, match="region map"):
            build_cluster(protocol="epaxos", num_nodes=5, num_clients=1,
                          overlay={"kind": "relay", "use_region_groups": True})

    def test_mid_round_reshuffle_keeps_deep_session_alive(self):
        # A reshuffle between a depth-2 round's fan-out and its responses
        # rebuilds the whole multi-level plan but must not strand the
        # in-flight aggregation session: the old round still completes
        # against the tree it was sent down.
        region_of = {n: ("virginia", "california", "oregon")[n % 3] for n in range(9)}
        zone_of = {n: f"{region_of[n]}-z{(n // 3) % 2}" for n in range(9)}
        relay, ctx = epaxos_replica(
            overlay=RelayFanout(use_region_groups=True, region_of=region_of,
                                zone_of=zone_of, levels=2),
            node_id=1, cluster=9,
        )
        inner = EPreAccept(instance=(0, 1), command=request().command, seq=1,
                           deps=frozenset())
        relay.on_message(0, RelayRequest(
            inner=inner,
            children=(RelaySubtree(2, children=(RelaySubtree(3),)), RelaySubtree(5)),
            agg_id=21, timeout=0.05, depth=1,
        ))
        assert relay.overlay.open_sessions == 1

        before = relay.overlay.plan()
        relay.reshuffle_groups()
        after = relay.overlay.plan()
        # The rebuilt plan is still hierarchical and zone-preserving...
        assert isinstance(before, HierarchicalGroupPlan)
        assert isinstance(after, HierarchicalGroupPlan)
        for old, new in zip(before.zones, after.zones):
            assert [sorted(z) for z in old] == [sorted(z) for z in new]
        # ...and the old round is neither dropped nor double-opened.
        assert relay.overlay.open_sessions == 1

        for child, voters in ((2, (2, 3)), (5, (5,))):
            votes = tuple(
                EPreAcceptReply(instance=(0, 1), voter=v, ok=True, seq=1,
                                deps=frozenset(), changed=False)
                for v in voters
            )
            relay.on_message(child, RelayAggregate(agg_id=21, responses=votes,
                                                   origin=child))
        aggregates = ctx.sent_of_type(RelayAggregate)
        assert len(aggregates) == 1
        dst, aggregate = aggregates[0]
        assert dst == 0 and aggregate.complete
        assert {r.voter for r in aggregate.responses} == {1, 2, 3, 5}


class TestThriftyFanout:
    def test_voting_round_targets_quorum_subset(self):
        replica, ctx = epaxos_replica(overlay=ThriftyFanout())
        replica.on_message(1000, request())
        preaccepts = ctx.sent_of_type(EPreAccept)
        # fast quorum for n=5 is 3 (leader included): 2 targets, not 4.
        assert len(preaccepts) == 2
        assert replica.overlay.pending_rounds == 1

    def test_fallback_rebroadcasts_to_every_peer(self):
        replica, ctx = epaxos_replica(overlay=ThriftyFanout(fallback_timeout=0.08))
        replica.on_message(1000, request())
        first_wave = ctx.sent_of_type(EPreAccept)
        timers = [t for t in ctx.pending_timers() if t.callback == replica.overlay._fallback]
        assert len(timers) == 1 and timers[0].delay == 0.08
        timers[0].fire()
        resent = ctx.sent_of_type(EPreAccept)[len(first_wave):]
        assert sorted(dst for dst, _ in resent) == [1, 2, 3, 4]  # full broadcast
        assert ctx.metrics.counter("epaxos.thrifty_fallbacks").value == 1
        assert replica.overlay.pending_rounds == 0

    def test_quorum_completion_cancels_fallback(self):
        replica, ctx = epaxos_replica(overlay=ThriftyFanout())
        replica.on_message(1000, request())
        (instance_id, instance), = replica.instances.items()
        for voter in (1, 2):
            replica.on_message(voter, EPreAcceptReply(
                instance=instance_id, voter=voter, ok=True,
                seq=instance.seq, deps=instance.deps, changed=False,
            ))
        assert instance.status in ("committed", "executed")
        assert replica.overlay.pending_rounds == 0
        timers = [t for t in ctx.pending_timers() if t.callback == replica.overlay._fallback]
        assert timers == []

    def test_commits_are_never_thinned(self):
        replica, ctx = epaxos_replica(overlay=ThriftyFanout())
        replica.on_message(1000, request())
        (instance_id, instance), = replica.instances.items()
        for voter in (1, 2):
            replica.on_message(voter, EPreAcceptReply(
                instance=instance_id, voter=voter, ok=True,
                seq=instance.seq, deps=instance.deps, changed=False,
            ))
        commits = ctx.sent_of_type(ECommit)
        assert sorted(dst for dst, _ in commits) == [1, 2, 3, 4]


class TestBuilderWiring:
    def test_epaxos_overlay_reaches_every_replica(self):
        cluster = build_cluster(protocol="epaxos", num_nodes=3, num_clients=1,
                                overlay={"kind": "relay", "num_groups": 2})
        overlays = [node.replica.overlay for node in cluster.nodes.values()]
        assert all(isinstance(o, RelayFanout) for o in overlays)
        assert len({id(o) for o in overlays}) == 3  # one instance per replica

    def test_epaxos_overlay_via_protocol_config(self):
        config = ProtocolConfig(overlay={"kind": "thrifty"})
        cluster = build_cluster(protocol="epaxos", num_nodes=3, num_clients=1,
                                protocol_config=config)
        assert all(isinstance(n.replica.overlay, ThriftyFanout) for n in cluster.nodes.values())

    def test_paxos_accepts_thrifty_but_not_relay(self):
        cluster = build_cluster(protocol="paxos", num_nodes=3, num_clients=1, overlay="thrifty")
        assert all(isinstance(n.replica.overlay, ThriftyFanout) for n in cluster.nodes.values())
        with pytest.raises(ConfigurationError):
            build_cluster(protocol="paxos", num_nodes=3, num_clients=1, overlay="relay")

    def test_pigpaxos_rejects_overlay_config(self):
        with pytest.raises(ConfigurationError):
            build_cluster(protocol="pigpaxos", num_nodes=3, num_clients=1, overlay="direct")

    def test_builder_overlay_wins_over_protocol_config(self):
        config = ProtocolConfig(overlay={"kind": "thrifty"})
        cluster = (ClusterBuilder().protocol("epaxos").nodes(3).clients(1)
                   .protocol_config(config).overlay("direct").build())
        assert all(isinstance(n.replica.overlay, DirectFanout) for n in cluster.nodes.values())


class TestTrafficAccounting:
    def test_per_node_and_per_kind_counters(self):
        cluster = build_cluster(protocol="epaxos", num_nodes=3, num_clients=2, seed=3)
        cluster.run(0.3)
        counters = cluster.sim.metrics.counters()
        traffic = node_traffic(counters)
        assert set(traffic) == {0, 1, 2}
        for stats in traffic.values():
            assert stats["messages_total"] == stats["messages_in"] + stats["messages_out"]
            assert stats["bytes_total"] > 0
        node, hot = bottleneck_node(counters)
        assert node in traffic
        assert hot["messages_total"] == max(t["messages_total"] for t in traffic.values())
        by_kind = sent_by_kind(counters)
        assert "EPreAccept" in by_kind
        assert by_kind["EPreAccept"]["count"] > 0
        assert by_kind["EPreAccept"]["bytes"] > 0

    def test_empty_counters_have_no_bottleneck(self):
        assert bottleneck_node({}) == (None, {})


class TestScenarioIntegration:
    @pytest.mark.parametrize("name", [
        "epaxos-relay-wan-9",
        "epaxos-relay-reshuffle-storm",
        "epaxos-thrifty-crash",
        "epaxos-thrifty-severed-links",
    ])
    def test_overlay_scenarios_pass_all_checkers(self, name):
        result = run_scenario(get_scenario(name))
        result.raise_on_violations()
        assert result.completed_requests > 0

    def test_overlay_scenarios_are_deterministic(self):
        a = run_scenario(get_scenario("epaxos-relay-reshuffle-storm"))
        b = run_scenario(get_scenario("epaxos-relay-reshuffle-storm"))
        assert a.fingerprint() == b.fingerprint()

    def test_thrifty_fallback_mutation_is_caught(self, monkeypatch):
        """Drop the fallback re-send: the progress checker must fire.

        A thrifty round that sampled an unreachable peer can only recover
        through the fallback broadcast (the client's own retry eventually
        papers over it, but far too slowly).  With the fallback disabled the
        severed-links scenario falls well below its liveness floor.
        """
        monkeypatch.setattr(ThriftyFanout, "_fallback", lambda self, round_id: None)
        result = run_scenario(get_scenario("epaxos-thrifty-severed-links"))
        assert not result.ok
        assert any(v.checker == "progress" for v in result.violations)
        # Safety must still hold: only the liveness floor may fire.
        assert all(v.checker == "progress" for v in result.violations)
