"""Unit tests for the Multi-Paxos replica, driven through a fake context."""

from __future__ import annotations

from helpers import FakeContext
from repro.paxos.replica import MultiPaxosReplica
from repro.protocol.ballot import Ballot
from repro.protocol.config import ProtocolConfig
from repro.protocol.messages import (
    ClientReply,
    ClientRequest,
    FillReply,
    FillRequest,
    Heartbeat,
    P1a,
    P1b,
    P2a,
    P2b,
)
from repro.statemachine.command import Command, OpType


def make_replica(node_id: int = 0, cluster: int = 5, leader: int = 0):
    ctx = FakeContext(node_id=node_id, all_nodes=list(range(cluster)))
    replica = MultiPaxosReplica(config=ProtocolConfig(initial_leader=leader))
    replica.bind(ctx)
    return replica, ctx


def client_request(key: str = "k", client_id: int = 1000, request_id: int = 1) -> ClientRequest:
    return ClientRequest(
        command=Command(op=OpType.PUT, key=key, payload_size=8, client_id=client_id, request_id=request_id)
    )


def elect(replica, ctx):
    """Drive the replica through phase-1 until it is the leader."""
    replica.start()
    for timer in list(ctx.pending_timers()):
        if timer.delay == 0.0:
            timer.fire()
    for voter in (1, 2):
        replica.on_message(voter, P1b(ballot=replica.ballot, voter=voter, ok=True))
    assert replica.is_leader
    ctx.clear_sent()


class TestPhase1:
    def test_initial_leader_broadcasts_p1a(self):
        replica, ctx = make_replica()
        replica.start()
        for timer in list(ctx.pending_timers()):
            if timer.delay == 0.0:
                timer.fire()
        p1as = ctx.sent_of_type(P1a)
        assert len(p1as) == 4  # every peer
        assert replica.ballot.leader == 0

    def test_becomes_leader_after_majority_promises(self):
        replica, ctx = make_replica()
        elect(replica, ctx)
        assert replica.leader_id == 0

    def test_follower_promises_higher_ballot(self):
        replica, ctx = make_replica(node_id=1, leader=0)
        ballot = Ballot(5, 0)
        replica.on_message(0, P1a(ballot=ballot))
        replies = ctx.sent_of_type(P1b)
        assert len(replies) == 1
        assert replies[0][1].ok
        assert replica.promised == ballot

    def test_follower_rejects_lower_ballot(self):
        replica, ctx = make_replica(node_id=1)
        replica.on_message(0, P1a(ballot=Ballot(5, 0)))
        ctx.clear_sent()
        replica.on_message(2, P1a(ballot=Ballot(3, 2)))
        reply = ctx.sent_of_type(P1b)[0][1]
        assert not reply.ok
        assert reply.ballot == Ballot(5, 0)

    def test_new_leader_reproposes_accepted_commands(self):
        replica, ctx = make_replica()
        replica.start()
        for timer in list(ctx.pending_timers()):
            if timer.delay == 0.0:
                timer.fire()
        old_command = Command(op=OpType.PUT, key="old", payload_size=8)
        replica.on_message(1, P1b(ballot=replica.ballot, voter=1, ok=True,
                                  accepted={1: (Ballot(1, 3), old_command)}))
        replica.on_message(2, P1b(ballot=replica.ballot, voter=2, ok=True))
        assert replica.is_leader
        reproposed = [msg for _, msg in ctx.sent_of_type(P2a) if msg.slot == 1]
        assert reproposed and reproposed[0].command is old_command


class TestPhase2:
    def test_leader_fans_out_p2a_to_all_followers(self):
        replica, ctx = make_replica()
        elect(replica, ctx)
        replica.on_message(1000, client_request())
        p2as = ctx.sent_of_type(P2a)
        assert len(p2as) == 4
        assert {dst for dst, _ in p2as} == {1, 2, 3, 4}

    def test_commit_after_majority_and_reply_to_client(self):
        replica, ctx = make_replica()
        elect(replica, ctx)
        replica.on_message(1000, client_request(client_id=1000, request_id=7))
        slot = ctx.sent_of_type(P2a)[0][1].slot
        replica.on_message(1, P2b(ballot=replica.ballot, slot=slot, voter=1, ok=True))
        assert not replica.log.is_committed(slot)  # 2 of 5 votes so far (leader + 1)
        replica.on_message(2, P2b(ballot=replica.ballot, slot=slot, voter=2, ok=True))
        assert replica.log.is_committed(slot)
        replies = ctx.sent_of_type(ClientReply)
        assert len(replies) == 1
        dst, reply = replies[0]
        assert dst == 1000 and reply.request_id == 7 and reply.success

    def test_duplicate_votes_do_not_commit_early(self):
        replica, ctx = make_replica()
        elect(replica, ctx)
        replica.on_message(1000, client_request())
        slot = ctx.sent_of_type(P2a)[0][1].slot
        replica.on_message(1, P2b(ballot=replica.ballot, slot=slot, voter=1, ok=True))
        replica.on_message(1, P2b(ballot=replica.ballot, slot=slot, voter=1, ok=True))
        assert not replica.log.is_committed(slot)

    def test_follower_accepts_and_votes(self):
        replica, ctx = make_replica(node_id=2)
        ballot = Ballot(1, 0)
        command = Command(op=OpType.PUT, key="x", payload_size=8)
        replica.on_message(0, P2a(ballot=ballot, slot=1, command=command, commit_upto=0))
        votes = ctx.sent_of_type(P2b)
        assert len(votes) == 1 and votes[0][0] == 0 and votes[0][1].ok
        assert replica.log.get(1).command is command

    def test_follower_rejects_stale_ballot_p2a(self):
        replica, ctx = make_replica(node_id=2)
        replica.on_message(0, P1a(ballot=Ballot(9, 0)))
        ctx.clear_sent()
        replica.on_message(1, P2a(ballot=Ballot(2, 1), slot=1, command=None, commit_upto=0))
        vote = ctx.sent_of_type(P2b)[0][1]
        assert not vote.ok and vote.ballot == Ballot(9, 0)

    def test_leader_steps_down_on_higher_ballot_nack(self):
        replica, ctx = make_replica()
        elect(replica, ctx)
        replica.on_message(1000, client_request())
        slot = ctx.sent_of_type(P2a)[0][1].slot
        replica.on_message(3, P2b(ballot=Ballot(10, 3), slot=slot, voter=3, ok=False))
        assert not replica.is_leader
        assert replica.leader_id == 3

    def test_reply_routed_via_command_client_id(self):
        replica, ctx = make_replica()
        elect(replica, ctx)
        # Request forwarded by another replica: src is a node, but the command
        # carries the real client id.
        replica.on_message(3, client_request(client_id=1234, request_id=9))
        slot = ctx.sent_of_type(P2a)[0][1].slot
        for voter in (1, 2):
            replica.on_message(voter, P2b(ballot=replica.ballot, slot=slot, voter=voter, ok=True))
        dst, reply = ctx.sent_of_type(ClientReply)[0]
        assert dst == 1234 and reply.client_id == 1234


class TestCommitPropagation:
    def test_piggybacked_commit_frontier_executes_on_follower(self):
        replica, ctx = make_replica(node_id=1)
        ballot = Ballot(1, 0)
        first = Command(op=OpType.PUT, key="a", value="1")
        second = Command(op=OpType.PUT, key="b", value="2")
        replica.on_message(0, P2a(ballot=ballot, slot=1, command=first, commit_upto=0))
        replica.on_message(0, P2a(ballot=ballot, slot=2, command=second, commit_upto=1))
        assert replica.log.is_committed(1)
        assert replica.store.get("a") == "1"
        assert not replica.log.is_committed(2)

    def test_heartbeat_advances_commit_frontier(self):
        replica, ctx = make_replica(node_id=1)
        ballot = Ballot(1, 0)
        command = Command(op=OpType.PUT, key="a", value="1")
        replica.on_message(0, P2a(ballot=ballot, slot=1, command=command, commit_upto=0))
        replica.on_message(0, Heartbeat(ballot=ballot, commit_upto=1))
        assert replica.log.is_committed(1)
        assert replica.store.get("a") == "1"

    def test_mismatched_ballot_triggers_fill_request(self):
        replica, ctx = make_replica(node_id=1)
        old, new = Ballot(1, 0), Ballot(2, 2)
        replica.on_message(0, P2a(ballot=old, slot=1, command=Command(op=OpType.PUT, key="a"), commit_upto=0))
        # New leader says slot 1 is committed, but our entry is from the old ballot.
        replica.on_message(2, Heartbeat(ballot=new, commit_upto=1))
        fill_timers = [t for t in ctx.pending_timers() if t.callback == replica._request_fill]
        assert fill_timers
        fill_timers[0].fire()
        requests = ctx.sent_of_type(FillRequest)
        assert requests and requests[0][1].slots == (1,)

    def test_leader_answers_fill_request(self):
        replica, ctx = make_replica()
        elect(replica, ctx)
        replica.on_message(1000, client_request())
        slot = ctx.sent_of_type(P2a)[0][1].slot
        for voter in (1, 2):
            replica.on_message(voter, P2b(ballot=replica.ballot, slot=slot, voter=voter, ok=True))
        ctx.clear_sent()
        replica.on_message(4, FillRequest(slots=(slot,), requester=4))
        replies = ctx.sent_of_type(FillReply)
        assert replies and replies[0][0] == 4
        assert replies[0][1].entries[0][0] == slot

    def test_follower_applies_fill_reply(self):
        replica, ctx = make_replica(node_id=4)
        command = Command(op=OpType.PUT, key="z", value="9")
        replica.on_message(0, FillReply(entries=((1, Ballot(1, 0), command),)))
        assert replica.log.is_committed(1)
        assert replica.store.get("z") == "9"


class TestClientHandling:
    def test_non_leader_redirects_to_known_leader(self):
        replica, ctx = make_replica(node_id=2)
        replica.on_message(0, P2a(ballot=Ballot(1, 0), slot=1,
                                  command=Command(op=OpType.PUT, key="x"), commit_upto=0))
        ctx.clear_sent()
        request = client_request(client_id=1000, request_id=4)
        replica.on_message(1000, request)
        redirects = ctx.sent_of_type(ClientReply)
        assert redirects and redirects[0][0] == 1000
        reply = redirects[0][1]
        assert not reply.success and reply.leader_hint == 0 and reply.request_id == 4

    def test_request_queued_until_leadership_known(self):
        replica, ctx = make_replica(node_id=2, leader=0)
        request = client_request()
        replica.on_message(1000, request)
        assert ctx.sent_of_type(P2a) == []
        assert replica._pending_requests


class TestFailover:
    def test_election_triggered_after_leader_silence(self):
        replica, ctx = make_replica(node_id=3, leader=0)
        replica.start()
        ctx.advance(10.0)
        liveness = [t for t in ctx.pending_timers() if t.callback == replica._check_leader_liveness]
        liveness[0].fire()
        assert ctx.sent_of_type(P1a)

    def test_crash_drops_leader_state_but_keeps_log(self):
        replica, ctx = make_replica()
        elect(replica, ctx)
        replica.on_message(1000, client_request())
        replica.on_crash()
        assert not replica.is_leader
        assert len(replica.log) >= 1  # stable storage survives
        replica.on_recover()
        assert not replica.is_leader

    def test_status_snapshot_keys(self):
        replica, ctx = make_replica()
        elect(replica, ctx)
        status = replica.status()
        assert status["is_leader"] is True
        assert status["node"] == 0


class TestAtMostOnceExecution:
    """Client-session dedup: a command committed in two slots applies once."""

    def test_duplicate_command_in_two_slots_applies_once(self):
        replica, ctx = make_replica()
        elect(replica, ctx)
        ballot = replica.ballot
        first = Command(op=OpType.PUT, key="k", value="first", client_id=1000, request_id=1)
        replica.on_message(1000, ClientRequest(command=first))
        for voter in (1, 2):
            replica.on_message(voter, P2b(ballot=ballot, slot=1, voter=voter, ok=True))
        assert replica.store.get("k") == "first"

        # Another client writes the same key in the next slot.
        second = Command(op=OpType.PUT, key="k", value="second", client_id=1001, request_id=1)
        replica.on_message(1001, ClientRequest(command=second))
        for voter in (1, 2):
            replica.on_message(voter, P2b(ballot=ballot, slot=2, voter=voter, ok=True))
        assert replica.store.get("k") == "second"

        # Client 1000 retries its first request (e.g. its reply was lost) and
        # the command is legitimately committed again in a third slot.  The
        # second application must be suppressed or it would clobber "second".
        replica.on_message(1000, ClientRequest(command=first))
        for voter in (1, 2):
            replica.on_message(voter, P2b(ballot=ballot, slot=3, voter=voter, ok=True))
        assert replica.log.is_committed(3)
        assert replica.store.get("k") == "second"
        assert ctx.metrics.counter("paxos.duplicate_commands_skipped").value == 1
        # The retrying client still gets an answer (from the cached result).
        replies = [msg for dst, msg in ctx.sent_of_type(ClientReply) if dst == 1000]
        assert len(replies) == 2

    def test_commands_without_session_info_always_apply(self):
        replica, ctx = make_replica()
        elect(replica, ctx)
        ballot = replica.ballot
        for slot in (1, 2):
            anonymous = Command(op=OpType.PUT, key="k", value=f"v{slot}")  # request_id=0
            replica.on_message(1000, ClientRequest(command=anonymous))
            for voter in (1, 2):
                replica.on_message(voter, P2b(ballot=ballot, slot=slot, voter=voter, ok=True))
        assert replica.store.get("k") == "v2"
        assert ctx.metrics.counter("paxos.duplicate_commands_skipped").value == 0

    def test_session_cache_is_bounded_and_keeps_in_window_dedup(self):
        """The dedup cache evicts beyond the window but still suppresses
        re-execution of any request whose entry is inside the window."""
        ctx = FakeContext(node_id=0, all_nodes=list(range(5)))
        replica = MultiPaxosReplica(config=ProtocolConfig(initial_leader=0, session_window=2))
        replica.bind(ctx)
        elect(replica, ctx)
        ballot = replica.ballot
        commands = [
            Command(op=OpType.PUT, key="k", value=f"v{i}", client_id=1000, request_id=i)
            for i in (1, 2, 3)
        ]
        for slot, command in enumerate(commands, start=1):
            replica.on_message(1000, ClientRequest(command=command))
            for voter in (1, 2):
                replica.on_message(voter, P2b(ballot=ballot, slot=slot, voter=voter, ok=True))
        # Window is 2: request 1 was evicted, requests 2 and 3 remain.
        assert replica._client_sessions.session_size(1000) == 2
        assert replica._client_sessions.evictions == 1
        assert replica._client_sessions.get(1000, 1) is None

        # An in-window retry (request 3) recommits but must not re-apply.
        replica.on_message(1000, ClientRequest(command=commands[2]))
        for voter in (1, 2):
            replica.on_message(voter, P2b(ballot=ballot, slot=4, voter=voter, ok=True))
        assert replica.store.get("k") == "v3"
        assert ctx.metrics.counter("paxos.duplicate_commands_skipped").value == 1


class TestRecoveryCommitFrontier:
    """A new leader must treat the quorum's committed frontier as decided.

    Executed entries are pruned from P1b promises, so without the frontier a
    recovering leader would propose fresh no-ops over committed slots --
    which is exactly the StateMachineError the partition scenarios caught.
    """

    def test_new_leader_skips_slots_committed_elsewhere(self):
        replica, ctx = make_replica(node_id=3, leader=3)
        replica.start()
        for timer in list(ctx.pending_timers()):
            if timer.delay == 0.0:
                timer.fire()
        ballot = replica.ballot
        pending_command = Command(op=OpType.PUT, key="p", value="pending")
        replica.on_message(1, P1b(ballot=ballot, voter=1, ok=True, commit_upto=7))
        replica.on_message(2, P1b(
            ballot=ballot, voter=2, ok=True,
            accepted={8: (Ballot(1, 0), pending_command)}, commit_upto=7,
        ))
        assert replica.is_leader
        assert replica.next_slot == 9

        # Slots 1..7 are committed (and executed/pruned) on the voters: the
        # new leader must not propose anything there...
        proposed_slots = {msg.slot for _, msg in ctx.sent_of_type(P2a)}
        assert proposed_slots == {8}
        # ...but must fetch them from the voters that reported the frontier.
        fills = ctx.sent_of_type(FillRequest)
        assert {dst for dst, _ in fills} == {1, 2}
        assert all(set(msg.slots) == set(range(1, 8)) for _, msg in fills)

    def test_reported_commands_below_frontier_are_still_reproposed(self):
        # A voter holds slot 5 accepted-but-unexecuted (so it IS in its
        # promise) while the quorum frontier is 7.  Re-proposing the reported
        # command is safe and keeps recovery live even if every replica that
        # had slot 5 committed crashes before answering a fill.
        replica, ctx = make_replica(node_id=3, leader=3)
        replica.start()
        for timer in list(ctx.pending_timers()):
            if timer.delay == 0.0:
                timer.fire()
        ballot = replica.ballot
        surviving = Command(op=OpType.PUT, key="s", value="survivor")
        replica.on_message(1, P1b(
            ballot=ballot, voter=1, ok=True,
            accepted={5: (Ballot(1, 0), surviving)}, commit_upto=7,
        ))
        replica.on_message(2, P1b(ballot=ballot, voter=2, ok=True, commit_upto=7))
        assert replica.is_leader
        proposed = {msg.slot: msg.command for _, msg in ctx.sent_of_type(P2a)}
        assert 5 in proposed and proposed[5] is surviving
        # The pruned slots are fetched, never filled with fresh no-ops.
        assert set(proposed) == {5}

    def test_fill_reply_completes_the_recovered_prefix(self):
        replica, ctx = make_replica(node_id=3, leader=3)
        replica.start()
        for timer in list(ctx.pending_timers()):
            if timer.delay == 0.0:
                timer.fire()
        ballot = replica.ballot
        replica.on_message(1, P1b(ballot=ballot, voter=1, ok=True, commit_upto=3))
        replica.on_message(2, P1b(ballot=ballot, voter=2, ok=True, commit_upto=3))
        assert replica.is_leader

        commands = {slot: Command(op=OpType.PUT, key=f"k{slot}", value=f"v{slot}") for slot in (1, 2, 3)}
        entries = tuple((slot, Ballot(1, 0), commands[slot]) for slot in (1, 2, 3))
        replica.on_message(1, FillReply(entries=entries))
        assert replica.commit_upto == 3
        assert replica.store.get("k3") == "v3"
        assert replica.log.executed_count == 3
