"""Tests for the hot-path fast paths introduced by the simulator overhaul.

Three families:

* The lazily-sorted :class:`~repro.sim.metrics.Histogram` must agree exactly
  with the old keep-sorted-on-insert (``insort``) implementation for every
  statistic, under arbitrary interleavings of observes and reads (a read
  sorts; later observes must re-dirty the order).
* The :class:`~repro.net.sizes.SizeModel` per-type payload cache must
  resolve types with and without ``payload_bytes`` correctly, stay dynamic
  per *instance*, and never leak results across types.
* The incremental Paxos commit-frontier scan must behave exactly like a
  full window rescan: late accepts into remembered gaps, fill commits, and
  ballot changes must all be picked up.
"""

from __future__ import annotations

import random
from bisect import insort

import pytest

from repro.net.message import Message
from repro.net.sizes import SizeModel
from repro.sim.metrics import Histogram


class _InsortReference:
    """The pre-overhaul Histogram algorithm, kept as the test oracle."""

    def __init__(self) -> None:
        self._values = []
        self._sum = 0.0

    def observe(self, value: float) -> None:
        insort(self._values, value)
        self._sum += value

    def percentile(self, p: float) -> float:
        import math

        if not self._values:
            return 0.0
        if len(self._values) == 1:
            return self._values[0]
        rank = (p / 100.0) * (len(self._values) - 1)
        low, high = math.floor(rank), math.ceil(rank)
        if low == high:
            return self._values[int(rank)]
        low_value, high_value = self._values[low], self._values[high]
        if low_value == high_value:
            return low_value
        fraction = rank - low
        interpolated = low_value * (1.0 - fraction) + high_value * fraction
        return min(max(interpolated, low_value), high_value)


class TestLazyHistogram:
    def test_empty_histogram_statistics(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.min == 0.0 and h.max == 0.0 and h.mean == 0.0
        assert h.percentile(99.0) == 0.0

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_insort_reference_on_random_orders(self, seed):
        rng = random.Random(seed)
        h = Histogram("h")
        ref = _InsortReference()
        for _ in range(rng.randint(1, 400)):
            value = rng.uniform(0.0, 10.0)
            h.observe(value)
            ref.observe(value)
        assert h.count == len(ref._values)
        assert h.sum == pytest.approx(ref._sum)
        assert h.min == ref._values[0]
        assert h.max == ref._values[-1]
        for p in (0.0, 10.0, 50.0, 90.0, 99.0, 100.0):
            assert h.percentile(p) == ref.percentile(p), f"p{p} diverged (seed={seed})"

    def test_observes_after_reads_redirty_the_order(self):
        # The failure mode of a lazy sort: read once (sorts), then append a
        # smaller value and read again -- a stale sorted-flag would return
        # the old minimum.
        h = Histogram("h")
        for value in (5.0, 3.0, 4.0):
            h.observe(value)
        assert h.min == 3.0 and h.max == 5.0
        h.observe(1.0)
        assert h.min == 1.0
        h.observe(9.0)
        assert h.max == 9.0
        assert h.median == 4.0

    def test_interleaved_observe_read_property(self):
        rng = random.Random(99)
        h = Histogram("h")
        shadow = []
        for _ in range(500):
            if shadow and rng.random() < 0.3:
                ordered = sorted(shadow)
                assert h.min == ordered[0]
                assert h.max == ordered[-1]
                assert h.percentile(50.0) == pytest.approx(
                    _percentile_oracle(ordered, 50.0)
                )
            else:
                value = rng.uniform(-5.0, 5.0)
                h.observe(value)
                shadow.append(value)

    def test_snapshot_consistent(self):
        h = Histogram("h")
        for value in (2.0, 1.0, 3.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 3.0
        assert snap["min"] == 1.0 and snap["max"] == 3.0
        assert snap["p50"] == 2.0


def _percentile_oracle(ordered, p):
    import math

    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low, high = math.floor(rank), math.ceil(rank)
    if low == high:
        return ordered[int(rank)]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


# --------------------------------------------------------------------- sizes
class _Sized(Message):
    """Message whose payload varies per instance."""

    def __init__(self, payload: int) -> None:
        self._payload = payload

    def payload_bytes(self) -> int:
        return self._payload


class _MetadataOnly(Message):
    """Message that inherits the base zero-payload implementation."""


class _Negative(Message):
    def payload_bytes(self) -> int:
        return -100


class TestSizeModelCache:
    def test_type_with_payload_method(self):
        model = SizeModel(header_bytes=64)
        assert model.size_of(_Sized(100)) == 164
        # The cache stores the *function*, not a size: per-instance payloads
        # stay dynamic.
        assert model.size_of(_Sized(0)) == 64
        assert model.size_of(_Sized(7)) == 71

    def test_type_without_payload_method(self):
        model = SizeModel(header_bytes=32)
        assert model.size_of(object()) == 32
        assert model.size_of(object()) == 32

    def test_inherited_base_payload_short_circuits_to_header(self):
        model = SizeModel(header_bytes=48)
        assert model.size_of(_MetadataOnly()) == 48

    def test_negative_payload_clamped(self):
        model = SizeModel(header_bytes=64)
        assert model.size_of(_Negative()) == 64

    def test_cache_does_not_leak_across_types(self):
        model = SizeModel(header_bytes=10)
        assert model.size_of(_Sized(5)) == 15
        assert model.size_of(_MetadataOnly()) == 10
        assert model.size_of(object()) == 10
        assert model.size_of(_Sized(6)) == 16

    def test_independent_models_share_nothing(self):
        small = SizeModel(header_bytes=1)
        big = SizeModel(header_bytes=1000)
        probe = _Sized(5)
        assert small.size_of(probe) == 6
        assert big.size_of(probe) == 1005


# ------------------------------------------------------ commit-frontier scan
class TestIncrementalCommitFrontier:
    """The gap-set frontier scan must match a naive full rescan exactly."""

    def _replica(self, num_nodes=3):
        from repro.cluster.builder import ClusterBuilder

        cluster = ClusterBuilder().protocol("paxos").nodes(num_nodes).clients(1).seed(1).build()
        return cluster.nodes[1].replica  # a follower

    def test_late_accept_into_gap_commits_on_next_frontier(self):
        from repro.protocol.ballot import Ballot
        from repro.statemachine.command import Command, OpType

        replica = self._replica()
        ballot = Ballot(1, 0)
        replica.promised = ballot
        first = Command(op=OpType.PUT, key="a", value="1", client_id=7, request_id=1)
        third = Command(op=OpType.PUT, key="a", value="3", client_id=7, request_id=3)
        replica.log.accept(1, ballot, first)
        replica.log.accept(3, ballot, third)
        # Slot 2 missing: the frontier stalls and slots 2..3 become gaps.
        replica._apply_commit_frontier(3, ballot)
        assert replica.commit_upto == 1
        assert 2 in replica._frontier_gaps
        # The late accept for slot 2 arrives; the *next* frontier scan must
        # re-examine the remembered gap and commit straight through.
        second = Command(op=OpType.PUT, key="a", value="2", client_id=7, request_id=2)
        replica.log.accept(2, ballot, second)
        replica._apply_commit_frontier(3, ballot)
        assert replica.commit_upto == 3
        assert not replica._frontier_gaps

    def test_ballot_change_rejudges_remembered_gaps(self):
        from repro.protocol.ballot import Ballot
        from repro.statemachine.command import Command, OpType

        replica = self._replica()
        old_ballot = Ballot(1, 0)
        new_ballot = Ballot(2, 2)
        replica.promised = new_ballot
        command = Command(op=OpType.PUT, key="a", value="1", client_id=7, request_id=1)
        replica.log.accept(1, new_ballot, command)
        # Announced under the old ballot: entry mismatches, slot 1 is a gap.
        replica._apply_commit_frontier(1, old_ballot)
        assert replica.commit_upto == 0
        assert 1 in replica._frontier_gaps
        # Same entry, new announcing ballot: the gap must be re-judged and
        # committed even though the log entry itself never changed.
        replica._apply_commit_frontier(1, new_ballot)
        assert replica.commit_upto == 1

    def test_gap_above_announced_frontier_not_committed_early(self):
        from repro.protocol.ballot import Ballot
        from repro.statemachine.command import Command, OpType

        replica = self._replica()
        ballot = Ballot(1, 0)
        replica.promised = ballot
        # Slot 1 missing entirely; slots 2..3 present.  A high announcement
        # records gaps, then a lower (reordered) announcement arrives: the
        # scan must not touch slots above it.
        for slot in (2, 3):
            cmd = Command(op=OpType.PUT, key="a", value=str(slot), client_id=7, request_id=slot)
            replica.log.accept(slot, ballot, cmd)
        replica._apply_commit_frontier(3, ballot)
        assert replica.commit_upto == 0
        committed_high = replica.log.is_committed(3)
        # Full-rescan semantics: slots <= the announced frontier with a
        # matching ballot commit (2 and 3 did); slot 1 stays the gap.
        assert committed_high
        assert 1 in replica._frontier_gaps
