"""Unit tests for the PigPaxos replica: relay trees, aggregation, timeouts, retries."""

from __future__ import annotations

from helpers import FakeContext
from repro.core.config import PigPaxosConfig
from repro.core.messages import PigAggregate, PigRelayRequest, RelaySubtree
from repro.core.replica import PigPaxosReplica
from repro.protocol.ballot import Ballot
from repro.protocol.messages import ClientReply, ClientRequest, Heartbeat, P1a, P1b, P2a, P2b
from repro.statemachine.command import Command, OpType


def make_replica(node_id=0, cluster=9, groups=2, leader=0, **config_kwargs):
    ctx = FakeContext(node_id=node_id, all_nodes=list(range(cluster)))
    config = PigPaxosConfig(num_relay_groups=groups, initial_leader=leader, **config_kwargs)
    replica = PigPaxosReplica(config=config)
    replica.bind(ctx)
    return replica, ctx


def client_request(key="k", client_id=1000, request_id=1) -> ClientRequest:
    return ClientRequest(
        command=Command(op=OpType.PUT, key=key, payload_size=8, client_id=client_id, request_id=request_id)
    )


def elect(replica, ctx):
    replica.start()
    for timer in list(ctx.pending_timers()):
        if timer.delay == 0.0:
            timer.fire()
    ballot = replica.ballot
    for voter in replica.peers[: replica.quorum.phase1_size - 1]:
        replica.on_message(voter, PigAggregate(agg_id=1, responses=(P1b(ballot=ballot, voter=voter, ok=True),)))
    assert replica.is_leader
    ctx.clear_sent()


class TestLeaderFanOut:
    def test_phase1_goes_through_relays_not_broadcast(self):
        replica, ctx = make_replica()
        replica.start()
        for timer in list(ctx.pending_timers()):
            if timer.delay == 0.0:
                timer.fire()
        relay_requests = ctx.sent_of_type(PigRelayRequest)
        assert len(relay_requests) == 2  # one per relay group, not 8 peers
        assert all(isinstance(msg.inner, P1a) for _, msg in relay_requests)

    def test_phase2_sends_one_wrapped_message_per_group(self):
        replica, ctx = make_replica(groups=2)
        elect(replica, ctx)
        replica.on_message(1000, client_request())
        requests = ctx.sent_of_type(PigRelayRequest)
        assert len(requests) == 2
        covered = set()
        for dst, msg in requests:
            covered.add(dst)
            covered.update(n for child in msg.children for n in child.all_nodes())
        assert covered == set(replica.peers)

    def test_number_of_groups_respected(self):
        for groups in (2, 3, 4):
            replica, ctx = make_replica(cluster=25, groups=groups)
            elect(replica, ctx)
            replica.on_message(1000, client_request())
            assert len(ctx.sent_of_type(PigRelayRequest)) == groups

    def test_relays_rotate_across_rounds(self):
        replica, ctx = make_replica(cluster=25, groups=2)
        elect(replica, ctx)
        relay_sets = set()
        for request_id in range(1, 30):
            ctx.clear_sent()
            replica.on_message(1000, client_request(request_id=request_id))
            relay_sets.add(frozenset(dst for dst, _ in ctx.sent_of_type(PigRelayRequest)))
        assert len(relay_sets) > 3

    def test_fixed_relays_do_not_rotate(self):
        replica, ctx = make_replica(cluster=25, groups=2, fixed_relays=True)
        elect(replica, ctx)
        relay_sets = set()
        for request_id in range(1, 10):
            ctx.clear_sent()
            replica.on_message(1000, client_request(request_id=request_id))
            relay_sets.add(frozenset(dst for dst, _ in ctx.sent_of_type(PigRelayRequest)))
        assert len(relay_sets) == 1

    def test_heartbeat_wrapped_without_response_expectation(self):
        replica, ctx = make_replica()
        elect(replica, ctx)
        replica._heartbeat_tick()
        requests = ctx.sent_of_type(PigRelayRequest)
        assert requests and all(not msg.expects_response for _, msg in requests)

    def test_region_groups_used_when_configured(self):
        ctx = FakeContext(node_id=0, all_nodes=list(range(9)))
        config = PigPaxosConfig(num_relay_groups=2, use_region_groups=True)
        region_of = {n: ("east" if n % 3 == 0 else "west" if n % 3 == 1 else "central") for n in range(9)}
        replica = PigPaxosReplica(config=config, region_of=region_of)
        replica.bind(ctx)
        plan = replica.relay_group_plan()
        assert len(plan.groups) == 3  # one per region present among followers

    def test_explicit_group_plan_override(self):
        replica, ctx = make_replica()
        replica.set_group_plan([[1, 2, 3, 4], [5, 6, 7, 8]])
        assert replica.relay_group_plan().groups == [[1, 2, 3, 4], [5, 6, 7, 8]]

    def test_reshuffle_changes_plan_but_not_membership(self):
        replica, ctx = make_replica(cluster=25, groups=3)
        elect(replica, ctx)
        before = replica.relay_group_plan()
        after = replica.reshuffle_groups()
        assert sorted(after.members) == sorted(before.members)


class TestRelayRole:
    def _relay_request(self, replica, children, agg_id=42, timeout=0.05, slot=1):
        ballot = Ballot(1, 0)
        command = Command(op=OpType.PUT, key="x", payload_size=8)
        inner = P2a(ballot=ballot, slot=slot, command=command, commit_upto=0)
        return PigRelayRequest(inner=inner, children=children, agg_id=agg_id, timeout=timeout)

    def test_leaf_follower_replies_immediately_with_own_vote(self):
        replica, ctx = make_replica(node_id=3)
        replica.on_message(1, self._relay_request(replica, children=()))
        aggregates = ctx.sent_of_type(PigAggregate)
        assert len(aggregates) == 1
        dst, aggregate = aggregates[0]
        assert dst == 1
        assert len(aggregate.responses) == 1
        assert isinstance(aggregate.responses[0], P2b) and aggregate.responses[0].ok

    def test_relay_forwards_to_children_and_waits(self):
        replica, ctx = make_replica(node_id=1)
        children = (RelaySubtree(2), RelaySubtree(3))
        replica.on_message(0, self._relay_request(replica, children=children))
        forwarded = ctx.sent_of_type(PigRelayRequest)
        assert {dst for dst, _ in forwarded} == {2, 3}
        assert ctx.sent_of_type(PigAggregate) == []  # still waiting

    def test_relay_aggregates_after_all_children_respond(self):
        replica, ctx = make_replica(node_id=1)
        children = (RelaySubtree(2), RelaySubtree(3))
        replica.on_message(0, self._relay_request(replica, children=children, agg_id=7))
        ballot = Ballot(1, 0)
        for child in (2, 3):
            replica.on_message(child, PigAggregate(
                agg_id=7, responses=(P2b(ballot=ballot, slot=1, voter=child, ok=True),), origin=child))
        aggregates = ctx.sent_of_type(PigAggregate)
        assert len(aggregates) == 1
        dst, aggregate = aggregates[0]
        assert dst == 0
        assert len(aggregate.responses) == 3  # own vote + two children
        assert aggregate.complete

    def test_relay_timeout_flushes_partial_responses(self):
        replica, ctx = make_replica(node_id=1)
        children = (RelaySubtree(2), RelaySubtree(3))
        replica.on_message(0, self._relay_request(replica, children=children, agg_id=9))
        ballot = Ballot(1, 0)
        replica.on_message(2, PigAggregate(
            agg_id=9, responses=(P2b(ballot=ballot, slot=1, voter=2, ok=True),), origin=2))
        # Child 3 never answers; fire the relay timeout.
        timeout_timers = [t for t in ctx.pending_timers() if t.callback == replica.overlay._session_timeout]
        assert timeout_timers
        timeout_timers[0].fire()
        aggregates = ctx.sent_of_type(PigAggregate)
        assert len(aggregates) == 1
        assert len(aggregates[0][1].responses) == 2
        assert not aggregates[0][1].complete

    def test_threshold_flushes_early(self):
        replica, ctx = make_replica(node_id=1, group_response_threshold=0.5)
        children = tuple(RelaySubtree(n) for n in (2, 3, 4, 5))
        replica.on_message(0, self._relay_request(replica, children=children, agg_id=11))
        ballot = Ballot(1, 0)
        for child in (2, 3):
            replica.on_message(child, PigAggregate(
                agg_id=11, responses=(P2b(ballot=ballot, slot=1, voter=child, ok=True),), origin=child))
        aggregates = ctx.sent_of_type(PigAggregate)
        assert len(aggregates) == 1  # flushed at 2 of 4 children

    def test_straggler_after_flush_is_dropped(self):
        replica, ctx = make_replica(node_id=1)
        children = (RelaySubtree(2),)
        replica.on_message(0, self._relay_request(replica, children=children, agg_id=13))
        ballot = Ballot(1, 0)
        replica.on_message(2, PigAggregate(
            agg_id=13, responses=(P2b(ballot=ballot, slot=1, voter=2, ok=True),), origin=2))
        ctx.clear_sent()
        # A duplicate/straggler for the same closed session with no responses.
        replica.on_message(2, PigAggregate(agg_id=13, responses=(), origin=2))
        assert ctx.sent == []

    def test_relay_request_processes_inner_as_follower(self):
        replica, ctx = make_replica(node_id=4)
        replica.on_message(1, self._relay_request(replica, children=(), slot=3))
        assert replica.log.get(3) is not None

    def test_heartbeat_relay_forwards_without_aggregation(self):
        replica, ctx = make_replica(node_id=1)
        heartbeat = Heartbeat(ballot=Ballot(1, 0), commit_upto=0)
        request = PigRelayRequest(inner=heartbeat, children=(RelaySubtree(2),), agg_id=5,
                                  timeout=0.05, expects_response=False)
        replica.on_message(0, request)
        assert ctx.sent_of_type(PigAggregate) == []
        forwarded = ctx.sent_of_type(PigRelayRequest)
        assert forwarded and forwarded[0][0] == 2


class TestLeaderAggregation:
    def test_leader_commits_from_aggregated_votes(self):
        replica, ctx = make_replica(cluster=5, groups=2)
        elect(replica, ctx)
        replica.on_message(1000, client_request(request_id=3))
        requests = ctx.sent_of_type(PigRelayRequest)
        slot = requests[0][1].inner.slot
        agg_id = requests[0][1].agg_id
        ballot = replica.ballot
        votes = tuple(P2b(ballot=ballot, slot=slot, voter=voter, ok=True) for voter in (1, 2))
        replica.on_message(1, PigAggregate(agg_id=agg_id, responses=votes, origin=1))
        assert replica.log.is_committed(slot)
        replies = ctx.sent_of_type(ClientReply)
        assert replies and replies[0][0] == 1000

    def test_leader_retry_uses_fresh_fanout(self):
        replica, ctx = make_replica(cluster=9, groups=2)
        elect(replica, ctx)
        replica.on_message(1000, client_request())
        first_round = ctx.sent_of_type(PigRelayRequest)
        retry_timers = [t for t in ctx.pending_timers() if t.callback == replica._retry_proposal]
        assert retry_timers
        ctx.clear_sent()
        retry_timers[0].fire()
        second_round = ctx.sent_of_type(PigRelayRequest)
        assert len(second_round) == 2
        assert second_round[0][1].agg_id != first_round[0][1].agg_id

    def test_retry_skipped_once_committed(self):
        replica, ctx = make_replica(cluster=5, groups=2)
        elect(replica, ctx)
        replica.on_message(1000, client_request())
        requests = ctx.sent_of_type(PigRelayRequest)
        slot, agg_id = requests[0][1].inner.slot, requests[0][1].agg_id
        ballot = replica.ballot
        votes = tuple(P2b(ballot=ballot, slot=slot, voter=voter, ok=True) for voter in (1, 2))
        replica.on_message(1, PigAggregate(agg_id=agg_id, responses=votes, origin=1))
        ctx.clear_sent()
        for timer in [t for t in ctx.timers if t.callback == replica._retry_proposal and not t.cancelled]:
            timer.fire()
        assert ctx.sent_of_type(PigRelayRequest) == []

    def test_crash_clears_open_sessions(self):
        replica, ctx = make_replica(node_id=1)
        ballot = Ballot(1, 0)
        inner = P2a(ballot=ballot, slot=1, command=Command(op=OpType.PUT, key="x"), commit_upto=0)
        replica.on_message(0, PigRelayRequest(inner=inner, children=(RelaySubtree(2),), agg_id=77, timeout=0.05))
        assert replica.overlay.open_sessions
        replica.on_crash()
        assert not replica.overlay.open_sessions

    def test_status_reports_relay_groups_for_leader(self):
        replica, ctx = make_replica(cluster=9, groups=2)
        elect(replica, ctx)
        status = replica.status()
        assert status["is_leader"]
        assert len(status["relay_groups"]) == 2


class TestRelayFailureRecovery:
    """Regression tests: a crashed relay must not sink a round or its votes."""

    def test_crashed_relay_round_is_retried_and_still_commits(self):
        replica, ctx = make_replica(cluster=9, groups=2)
        elect(replica, ctx)
        replica.on_message(1000, client_request(request_id=5))
        first_round = ctx.sent_of_type(PigRelayRequest)
        assert len(first_round) == 2
        slot = first_round[0][1].inner.slot
        first_agg = first_round[0][1].agg_id
        first_relays = {dst for dst, _ in first_round}

        # Both relays crash silently: no aggregates ever come back, the
        # leader's per-proposal retry timer fires instead.
        retry_timers = [t for t in ctx.pending_timers() if t.callback == replica._retry_proposal]
        assert retry_timers
        ctx.clear_sent()
        retry_timers[0].fire()

        second_round = ctx.sent_of_type(PigRelayRequest)
        assert len(second_round) == 2
        second_agg = second_round[0][1].agg_id
        assert second_agg != first_agg  # a genuinely fresh round
        assert not replica.log.is_committed(slot)

        # The fresh relays answer with a quorum of votes; the slot commits
        # and the client is answered even though round one died entirely.
        ballot = replica.ballot
        votes = tuple(
            P2b(ballot=ballot, slot=slot, voter=voter, ok=True) for voter in (1, 2, 3, 4)
        )
        relay = next(dst for dst, _ in second_round)
        replica.on_message(relay, PigAggregate(agg_id=second_agg, responses=votes, origin=relay))
        assert replica.log.is_committed(slot)
        assert ctx.sent_of_type(ClientReply)
        assert ctx.metrics.counter("pigpaxos.leader_round_retries").value >= 1
        # Either rotation picked different relays or the rng re-picked the
        # same ones -- both legal; the round id is what must differ.
        assert first_relays  # silence unused-variable linters

    def test_late_child_response_after_timeout_is_forwarded_to_parent(self):
        replica, ctx = make_replica(node_id=1)
        children = (RelaySubtree(2), RelaySubtree(3))
        ballot = Ballot(1, 0)
        command = Command(op=OpType.PUT, key="x", payload_size=8)
        inner = P2a(ballot=ballot, slot=1, command=command, commit_upto=0)
        replica.on_message(0, PigRelayRequest(inner=inner, children=children, agg_id=33, timeout=0.05))
        replica.on_message(2, PigAggregate(
            agg_id=33, responses=(P2b(ballot=ballot, slot=1, voter=2, ok=True),), origin=2))
        timeout_timers = [t for t in ctx.pending_timers() if t.callback == replica.overlay._session_timeout]
        timeout_timers[0].fire()  # partial flush: child 3 never answered
        ctx.clear_sent()

        # Child 3's vote finally arrives.  Before the fix this was swallowed
        # by the relay's own (follower) handling and the leader never saw it.
        late_vote = P2b(ballot=ballot, slot=1, voter=3, ok=True)
        replica.on_message(3, PigAggregate(agg_id=33, responses=(late_vote,), origin=3))
        forwarded = ctx.sent_of_type(PigAggregate)
        assert len(forwarded) == 1
        dst, aggregate = forwarded[0]
        assert dst == 0  # up the tree, towards the leader
        assert aggregate.responses == (late_vote,)
        assert not aggregate.complete
        assert ctx.metrics.counter("pigpaxos.late_responses_forwarded").value == 1

    def test_late_response_after_threshold_flush_is_forwarded(self):
        replica, ctx = make_replica(node_id=1, group_response_threshold=0.5)
        children = tuple(RelaySubtree(n) for n in (2, 3, 4, 5))
        ballot = Ballot(1, 0)
        inner = P2a(ballot=ballot, slot=1, command=Command(op=OpType.PUT, key="x"), commit_upto=0)
        replica.on_message(0, PigRelayRequest(inner=inner, children=children, agg_id=44, timeout=0.05))
        for child in (2, 3):
            replica.on_message(child, PigAggregate(
                agg_id=44, responses=(P2b(ballot=ballot, slot=1, voter=child, ok=True),), origin=child))
        assert len(ctx.sent_of_type(PigAggregate)) == 1  # early flush at 2/4
        ctx.clear_sent()
        replica.on_message(4, PigAggregate(
            agg_id=44, responses=(P2b(ballot=ballot, slot=1, voter=4, ok=True),), origin=4))
        forwarded = ctx.sent_of_type(PigAggregate)
        assert forwarded and forwarded[0][0] == 0

    def test_flushed_session_memory_is_bounded(self):
        replica, ctx = make_replica(node_id=1)
        ballot = Ballot(1, 0)
        for agg_id in range(replica.overlay._FLUSHED_SESSION_MEMORY + 50):
            inner = P2a(ballot=ballot, slot=agg_id + 1,
                        command=Command(op=OpType.PUT, key="x"), commit_upto=0)
            replica.on_message(0, PigRelayRequest(
                inner=inner, children=(RelaySubtree(2),), agg_id=agg_id, timeout=0.05))
            replica.on_message(2, PigAggregate(
                agg_id=agg_id,
                responses=(P2b(ballot=ballot, slot=agg_id + 1, voter=2, ok=True),),
                origin=2))
        assert len(replica.overlay._flushed_parents) <= replica.overlay._FLUSHED_SESSION_MEMORY


class TestAggregateSizeAccounting:
    def test_aggregate_payload_sums_children(self):
        ballot = Ballot(1, 0)
        votes = tuple(P2b(ballot=ballot, slot=1, voter=v, ok=True) for v in range(4))
        aggregate = PigAggregate(agg_id=1, responses=votes)
        assert aggregate.payload_bytes() == 4 * 8

    def test_relay_request_counts_membership_bytes(self):
        inner = P2a(ballot=Ballot(1, 0), slot=1,
                    command=Command(op=OpType.PUT, key="abcd", payload_size=100), commit_upto=0)
        children = (RelaySubtree(2, (RelaySubtree(3),)), RelaySubtree(4))
        request = PigRelayRequest(inner=inner, children=children, agg_id=1, timeout=0.05)
        assert request.payload_bytes() == inner.payload_bytes() + 4 * 3

    def test_subtree_size_and_depth(self):
        tree = RelaySubtree(1, (RelaySubtree(2), RelaySubtree(3, (RelaySubtree(4),))))
        assert tree.size() == 4
        assert tree.depth() == 3
        assert sorted(tree.all_nodes()) == [1, 2, 3, 4]
