"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.model import messages_at_follower, messages_at_leader
from repro.core.groups import RelayGroupPlan, contiguous_groups, round_robin_groups
from repro.protocol.ballot import Ballot
from repro.quorum.systems import FastQuorum, FlexibleQuorum, MajorityQuorum
from repro.sim.events import EventQueue
from repro.sim.metrics import Histogram
from repro.statemachine.command import Command, OpType
from repro.statemachine.kvstore import KVStore
from repro.statemachine.log import ReplicatedLog


# --------------------------------------------------------------------------- sim
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
def test_event_queue_pops_in_nondecreasing_time_order(times):
    queue = EventQueue()
    for time in times:
        queue.push(time, lambda: None)
    popped = []
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append(event.time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


@given(st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=1, max_size=200),
       st.integers(min_value=0, max_value=100))
def test_histogram_percentiles_are_monotone_and_bounded(values, percentile):
    histogram = Histogram("h")
    for value in values:
        histogram.observe(value)
    p = histogram.percentile(float(percentile))
    assert histogram.min <= p <= histogram.max
    assert histogram.percentile(0) == histogram.min
    assert histogram.percentile(100) == histogram.max


# --------------------------------------------------------------------------- log
@given(st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=60, unique=True))
def test_log_executes_exactly_the_gap_free_committed_prefix(slots):
    log = ReplicatedLog()
    ballot = Ballot(1, 0)
    for slot in slots:
        log.commit(slot, ballot, Command(op=OpType.PUT, key=f"k{slot}", payload_size=1))
    executed = log.execute_ready(lambda c: None)
    expected_prefix_length = 0
    slot = 1
    committed = set(slots)
    while slot in committed:
        expected_prefix_length += 1
        slot += 1
    assert len(executed) == expected_prefix_length
    assert [entry.slot for entry, _ in executed] == list(range(1, expected_prefix_length + 1))


@given(st.lists(st.tuples(st.sampled_from(["put", "get", "delete"]),
                          st.integers(min_value=0, max_value=5),
                          st.text(min_size=0, max_size=4)),
                max_size=80))
def test_kvstore_matches_reference_dict(operations):
    store = KVStore()
    reference = {}
    for op_name, key_index, value in operations:
        key = f"k{key_index}"
        if op_name == "put":
            store.apply(Command(op=OpType.PUT, key=key, value=value))
            reference[key] = value
        elif op_name == "delete":
            store.apply(Command(op=OpType.DELETE, key=key))
            reference.pop(key, None)
        else:
            result = store.apply(Command(op=OpType.GET, key=key))
            assert result.value == reference.get(key)
    assert store.items() == reference


# --------------------------------------------------------------------------- quorums
@given(st.integers(min_value=1, max_value=201))
def test_majority_quorums_always_intersect(n):
    quorum = MajorityQuorum(n)
    assert quorum.phase1_size + quorum.phase2_size > n
    assert quorum.max_failures == (n - 1) // 2


@given(st.integers(min_value=2, max_value=100), st.data())
def test_flexible_quorums_intersect_by_construction(n, data):
    q2 = data.draw(st.integers(min_value=1, max_value=n))
    q1 = data.draw(st.integers(min_value=n - q2 + 1, max_value=n))
    quorum = FlexibleQuorum(n, q1=q1, q2=q2)
    assert quorum.phase1_size + quorum.phase2_size > n


@given(st.integers(min_value=3, max_value=99).filter(lambda n: n % 2 == 1))
def test_fast_quorum_at_least_majority(n):
    quorum = FastQuorum(n)
    assert quorum.fast_path_size >= quorum.phase2_size - 1
    assert quorum.fast_path_size <= n


# --------------------------------------------------------------------------- relay groups
@given(st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=60, unique=True),
       st.integers(min_value=1, max_value=10))
def test_partitioners_cover_members_exactly_once(members, num_groups):
    for partition in (contiguous_groups(members, num_groups), round_robin_groups(members, num_groups)):
        flat = [node for group in partition for node in group]
        assert sorted(flat) == sorted(members)
        assert len(partition) <= num_groups
        assert all(group for group in partition)


@given(st.lists(st.integers(min_value=1, max_value=500), min_size=2, max_size=40, unique=True),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=3),
       st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60)
def test_relay_trees_cover_every_group_member(members, num_groups, levels, seed):
    plan = RelayGroupPlan(groups=round_robin_groups(members, num_groups))
    trees = plan.build_trees(rng=random.Random(seed), levels=levels)
    covered = sorted(node for tree in trees for node in tree.all_nodes())
    assert covered == sorted(members)
    assert len(trees) == plan.num_groups


@given(st.lists(st.integers(min_value=1, max_value=500), min_size=3, max_size=40, unique=True),
       st.integers(min_value=2, max_value=5),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=40)
def test_reshuffle_preserves_partition_invariants(members, num_groups, seed):
    plan = RelayGroupPlan(groups=round_robin_groups(members, num_groups))
    shuffled = plan.reshuffle(random.Random(seed))
    assert sorted(shuffled.members) == sorted(members)
    assert [len(g) for g in shuffled.groups] == [len(g) for g in plan.groups]


# --------------------------------------------------------------------------- analytical model
@given(st.integers(min_value=3, max_value=500), st.data())
def test_leader_load_dominates_average_follower_load(n, data):
    r = data.draw(st.integers(min_value=1, max_value=n - 1))
    leader = messages_at_leader(r)
    follower = messages_at_follower(n, r)
    # Section 6.3: the leader handles at least as many messages as the average
    # follower for every configuration, so it remains the bottleneck.
    assert leader >= follower - 1e-9
    assert 2.0 <= follower <= 4.0


@given(st.integers(min_value=3, max_value=500))
def test_paxos_is_the_degenerate_pigpaxos_configuration(n):
    assert messages_at_leader(n - 1) == 2 * (n - 1) + 2
    assert messages_at_follower(n, n - 1) == 2.0


# --------------------------------------------------------------------------- ballots
@given(st.tuples(st.integers(0, 100), st.integers(0, 50)),
       st.tuples(st.integers(0, 100), st.integers(0, 50)))
def test_ballot_ordering_is_total_and_next_is_greater(a, b):
    ballot_a, ballot_b = Ballot(*a), Ballot(*b)
    assert (ballot_a < ballot_b) or (ballot_b < ballot_a) or (ballot_a == ballot_b)
    assert ballot_a.next_for(7) > ballot_a
    assert ballot_a.next_for(7).leader == 7
