"""Unit tests for quorum systems and vote trackers."""

from __future__ import annotations

import pytest

from repro.errors import QuorumError
from repro.protocol.ballot import Ballot
from repro.quorum.systems import FastQuorum, FlexibleQuorum, MajorityQuorum
from repro.quorum.tracker import BallotVoteTracker, VoteTracker


class TestMajorityQuorum:
    @pytest.mark.parametrize("n,expected", [(1, 1), (3, 2), (5, 3), (9, 5), (25, 13)])
    def test_majority_sizes(self, n, expected):
        quorum = MajorityQuorum(n)
        assert quorum.phase1_size == expected
        assert quorum.phase2_size == expected

    def test_max_failures_matches_f(self):
        assert MajorityQuorum(5).max_failures == 2
        assert MajorityQuorum(25).max_failures == 12

    def test_satisfaction(self):
        quorum = MajorityQuorum(5)
        assert quorum.phase2_satisfied(3)
        assert not quorum.phase2_satisfied(2)

    def test_invalid_size_rejected(self):
        with pytest.raises(QuorumError):
            MajorityQuorum(0)


class TestFlexibleQuorum:
    def test_paper_example_10_nodes(self):
        # Paper Section 2.2: N=10, Q2=3 requires Q1=8.
        quorum = FlexibleQuorum(10, q1=8, q2=3)
        assert quorum.phase1_size == 8
        assert quorum.phase2_size == 3
        assert quorum.max_failures == 2

    def test_non_intersecting_quorums_rejected(self):
        with pytest.raises(QuorumError):
            FlexibleQuorum(10, q1=5, q2=5)

    def test_out_of_range_rejected(self):
        with pytest.raises(QuorumError):
            FlexibleQuorum(10, q1=11, q2=3)


class TestFastQuorum:
    def test_fast_path_size_formula(self):
        # n = 2f+1, fast quorum = f + floor((f+1)/2)
        assert FastQuorum(5).fast_path_size == 3
        assert FastQuorum(25).fast_path_size == 18
        assert FastQuorum(9).f == 4

    def test_slow_path_is_majority(self):
        assert FastQuorum(25).phase2_size == 13

    def test_fast_path_satisfied(self):
        quorum = FastQuorum(5)
        assert quorum.fast_path_satisfied(3)
        assert not quorum.fast_path_satisfied(2)

    def test_even_clusters_floor_at_majority(self):
        # Fuzz-found (seed 42): the paper's formula assumes n = 2f+1; on
        # even n it fell below a majority (n=4 gave 2), letting two command
        # leaders fast-commit conflicting commands with disjoint quorums.
        assert FastQuorum(4).fast_path_size == 3
        assert FastQuorum(6).fast_path_size == 4

    def test_fast_quorums_pairwise_intersect(self):
        # Dependency safety: any two fast quorums must share a replica.
        for n in range(2, 26):
            quorum = FastQuorum(n)
            assert 2 * quorum.fast_path_size > n, f"n={n}"

    def test_odd_clusters_keep_paper_sizes(self):
        # The majority floor must not move any n = 2f+1 quorum.
        for n in range(3, 26, 2):
            f = (n - 1) // 2
            assert FastQuorum(n).fast_path_size == f + (f + 1) // 2, f"n={n}"


class TestVoteTracker:
    def test_quorum_reached_on_required_acks(self):
        tracker = VoteTracker(required=3)
        assert not tracker.ack(1)
        assert not tracker.ack(2)
        assert tracker.ack(3)
        assert tracker.satisfied

    def test_duplicate_acks_do_not_double_count(self):
        tracker = VoteTracker(required=2)
        tracker.ack(1)
        assert not tracker.ack(1)
        assert tracker.ack_count == 1

    def test_nack_overrides_ack(self):
        tracker = VoteTracker(required=2)
        tracker.ack(1)
        tracker.nack(1)
        assert tracker.ack_count == 0
        assert tracker.nack_count == 1
        # Further acks from a nacked voter are ignored.
        tracker.ack(1)
        assert tracker.ack_count == 0

    def test_restricted_voter_set(self):
        tracker = VoteTracker(required=2, voters={1, 2, 3})
        with pytest.raises(QuorumError):
            tracker.ack(9)

    def test_rejected_when_quorum_impossible(self):
        tracker = VoteTracker(required=3, voters={1, 2, 3})
        tracker.nack(1)
        assert tracker.rejected

    def test_zero_required_rejected(self):
        with pytest.raises(QuorumError):
            VoteTracker(required=0)


class TestBallotVoteTracker:
    def test_merges_highest_ballot_accepted_value(self):
        tracker = BallotVoteTracker(required=2)
        low, high = Ballot(1, 0), Ballot(2, 1)
        tracker.ack(1, {5: (low, "old")})
        tracker.ack(2, {5: (high, "new"), 7: (low, "seven")})
        assert tracker.satisfied
        assert tracker.commands_to_repropose() == {5: "new", 7: "seven"}

    def test_no_accepted_entries(self):
        tracker = BallotVoteTracker(required=1)
        tracker.ack(1)
        assert tracker.commands_to_repropose() == {}

    def test_nack_does_not_satisfy(self):
        tracker = BallotVoteTracker(required=2)
        tracker.ack(1)
        tracker.nack(2)
        assert not tracker.satisfied


class TestBallot:
    def test_ordering_is_lexicographic(self):
        assert Ballot(1, 2) < Ballot(2, 0)
        assert Ballot(2, 1) > Ballot(2, 0)

    def test_next_for_increments_round(self):
        ballot = Ballot(3, 1).next_for(7)
        assert ballot == Ballot(4, 7)
        assert ballot.leader == 7

    def test_zero_is_smallest(self):
        assert Ballot.zero() < Ballot(1, 0)
        assert Ballot.zero().is_zero()

    def test_str_format(self):
        assert str(Ballot(4, 2)) == "4.2"
