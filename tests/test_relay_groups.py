"""Unit tests for relay-group partitioning and relay-tree construction."""

from __future__ import annotations

import random

import pytest

from repro.core.config import PigPaxosConfig
from repro.core.groups import (
    RelayGroupPlan,
    contiguous_groups,
    hash_groups,
    region_groups,
    round_robin_groups,
)
from repro.errors import ConfigurationError


class TestPartitioners:
    def test_contiguous_groups_cover_and_balance(self):
        groups = contiguous_groups(list(range(1, 25)), 3)
        assert sorted(n for g in groups for n in g) == list(range(1, 25))
        assert [len(g) for g in groups] == [8, 8, 8]

    def test_contiguous_uneven_split(self):
        groups = contiguous_groups(list(range(10)), 3)
        assert sorted(len(g) for g in groups) == [3, 3, 4]

    def test_round_robin_interleaves(self):
        groups = round_robin_groups([1, 2, 3, 4, 5, 6], 2)
        assert groups == [[1, 3, 5], [2, 4, 6]]

    def test_more_groups_than_members_collapses(self):
        groups = round_robin_groups([1, 2], 5)
        assert len(groups) == 2

    def test_hash_groups_cover_all_members(self):
        members = list(range(1, 25))
        groups = hash_groups(members, 4)
        assert sorted(n for g in groups for n in g) == members
        assert len(groups) == 4

    def test_region_groups_follow_regions(self):
        region_of = {1: "east", 2: "east", 3: "west", 4: "west", 5: "central"}
        groups = region_groups([1, 2, 3, 4, 5], region_of)
        assert [1, 2] in groups and [3, 4] in groups and [5] in groups

    def test_region_groups_collect_unassigned_nodes(self):
        groups = region_groups([1, 2, 3], {1: "east"})
        assert [1] in groups and sorted([2, 3]) in groups

    def test_invalid_group_count_rejected(self):
        with pytest.raises(ConfigurationError):
            contiguous_groups([1, 2, 3], 0)


class TestRelayGroupPlan:
    def test_plan_rejects_overlapping_groups(self):
        with pytest.raises(ConfigurationError):
            RelayGroupPlan(groups=[[1, 2], [2, 3]])

    def test_plan_rejects_empty_group(self):
        with pytest.raises(ConfigurationError):
            RelayGroupPlan(groups=[[1], []])

    def test_group_of_lookup(self):
        plan = RelayGroupPlan(groups=[[1, 2], [3, 4]])
        assert plan.group_of(3) == 1
        assert plan.group_of(99) is None

    def test_reshuffle_preserves_members_and_sizes(self):
        plan = RelayGroupPlan(groups=[[1, 2, 3], [4, 5], [6]])
        shuffled = plan.reshuffle(random.Random(3))
        assert sorted(shuffled.members) == sorted(plan.members)
        assert sorted(len(g) for g in shuffled.groups) == sorted(len(g) for g in plan.groups)

    def test_build_trees_one_per_group_covering_members(self):
        plan = RelayGroupPlan(groups=[[1, 2, 3, 4], [5, 6, 7, 8]])
        trees = plan.build_trees(rng=random.Random(1))
        assert len(trees) == 2
        covered = sorted(n for tree in trees for n in tree.all_nodes())
        assert covered == list(range(1, 9))
        for tree in trees:
            assert tree.depth() == 2  # relay + leaves

    def test_relay_rotation_uses_rng(self):
        plan = RelayGroupPlan(groups=[[1, 2, 3, 4, 5, 6, 7, 8]])
        rng = random.Random(0)
        relays = {plan.build_trees(rng=rng)[0].node_id for _ in range(50)}
        assert len(relays) > 1  # random rotation picks different relays over rounds

    def test_fixed_relays_pin_first_member(self):
        plan = RelayGroupPlan(groups=[[3, 1, 2], [6, 4, 5]])
        trees = plan.build_trees(rng=random.Random(0), fixed_relays=True)
        assert [tree.node_id for tree in trees] == [3, 6]

    def test_exclude_avoids_suspected_relays(self):
        plan = RelayGroupPlan(groups=[[1, 2, 3]])
        trees = plan.build_trees(rng=random.Random(0), exclude={1})
        assert trees[0].node_id in (2, 3)

    def test_multi_level_tree_nests(self):
        plan = RelayGroupPlan(groups=[list(range(1, 14))])
        tree = plan.build_trees(rng=random.Random(2), levels=2)[0]
        assert tree.depth() == 3
        assert sorted(tree.all_nodes()) == list(range(1, 14))

    def test_single_member_group_has_no_children(self):
        plan = RelayGroupPlan(groups=[[9]])
        tree = plan.build_trees(rng=random.Random(0))[0]
        assert tree.node_id == 9
        assert tree.children == ()


class TestPigPaxosConfig:
    def test_defaults_are_valid(self):
        config = PigPaxosConfig()
        assert config.num_relay_groups == 3
        assert config.relay_timeout == pytest.approx(0.05)

    def test_invalid_group_count(self):
        with pytest.raises(ConfigurationError):
            PigPaxosConfig(num_relay_groups=0)

    def test_leader_retry_must_exceed_relay_timeout(self):
        with pytest.raises(ConfigurationError):
            PigPaxosConfig(relay_timeout=0.2, leader_retry_timeout=0.1)

    def test_threshold_range_checked(self):
        with pytest.raises(ConfigurationError):
            PigPaxosConfig(group_response_threshold=1.5)
        assert PigPaxosConfig(group_response_threshold=0.5).group_response_threshold == 0.5

    def test_relay_levels_validated(self):
        with pytest.raises(ConfigurationError):
            PigPaxosConfig(relay_levels=0)
