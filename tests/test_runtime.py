"""Tests for the asyncio runtime: codec framing and a real localhost cluster."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import RuntimeTransportError
from repro.protocol.ballot import Ballot
from repro.protocol.messages import ClientRequest, P2a
from repro.runtime.codec import MAX_FRAME_BYTES, PickleCodec, frame
from repro.runtime.harness import LocalCluster
from repro.statemachine.command import Command, OpType


class TestCodec:
    def test_roundtrip_client_request(self):
        codec = PickleCodec()
        command = Command(op=OpType.PUT, key="k", value="v", payload_size=1,
                          client_id=5001, request_id=3)
        source, decoded = codec.decode(codec.encode(5001, ClientRequest(command=command)))
        assert source == 5001
        assert decoded.command.key == "k" and decoded.command.value == "v"

    def test_roundtrip_p2a_preserves_ballot(self):
        codec = PickleCodec()
        message = P2a(ballot=Ballot(3, 1), slot=9,
                      command=Command(op=OpType.PUT, key="x", payload_size=8), commit_upto=4)
        _, decoded = codec.decode(codec.encode(1, message))
        assert decoded.ballot == Ballot(3, 1)
        assert decoded.slot == 9 and decoded.commit_upto == 4

    def test_frame_rejects_oversized_payload(self):
        with pytest.raises(RuntimeTransportError):
            frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_frame_prefixes_length(self):
        framed = frame(b"abc")
        assert framed[:4] == (3).to_bytes(4, "big")
        assert framed[4:] == b"abc"


def _run(coro):
    return asyncio.run(coro)


@pytest.mark.parametrize("protocol", ["paxos", "pigpaxos"])
def test_local_cluster_put_get_delete(protocol):
    async def scenario():
        async with LocalCluster(protocol=protocol, num_nodes=3, relay_groups=2) as cluster:
            client = cluster.client()
            await client.connect(cluster.leader_id() or 0)
            await client.put("name", "pigpaxos")
            value = await client.get("name")
            assert value == "pigpaxos"
            await client.delete("name")
            assert await client.get("name") is None
            await client.close()

    _run(scenario())


def test_local_cluster_epaxos_roundtrip():
    async def scenario():
        async with LocalCluster(protocol="epaxos", num_nodes=3) as cluster:
            client = cluster.client()
            await client.connect(0)
            await client.put("k", "v1")
            await client.put("k", "v2")
            assert await client.get("k") == "v2"
            await client.close()

    _run(scenario())


def test_replicas_replicate_to_followers_over_tcp():
    async def scenario():
        async with LocalCluster(protocol="pigpaxos", num_nodes=3, relay_groups=2) as cluster:
            client = cluster.client()
            await client.connect(cluster.leader_id() or 0)
            for index in range(10):
                await client.put(f"key-{index}", str(index))
            await client.close()
            # Followers learn commits via piggybacked frontiers/heartbeats.
            await asyncio.sleep(0.3)
            stores = [len(server.replica.store) for server in cluster.servers]
            assert max(stores) == 10
            assert min(stores) >= 8

    _run(scenario())


def test_client_follows_leader_hint():
    async def scenario():
        async with LocalCluster(protocol="paxos", num_nodes=3) as cluster:
            client = cluster.client()
            # Connect to a follower on purpose; the request is forwarded and the
            # reply carries a leader hint.
            follower = next(s.node_id for s in cluster.servers if not getattr(s.replica, "is_leader", False))
            await client.connect(follower)
            await client.put("routed", "yes")
            assert await client.get("routed") == "yes"
            await client.close()

    _run(scenario())
