"""Scenario-level mutation tests: break a mechanism, watch a checker fire.

A resilience scenario is only as good as its floor: if disabling the very
mechanism the scenario exercises still passes, the scenario measures
nothing.  Each test here runs a library scenario twice -- once as shipped
(must pass) and once with one knob surgically flipped (must trip the
``progress`` liveness floor, and *only* that: safety checkers stay green,
because these mutations lose performance, not correctness).

The thrifty-fallback twin of these tests lives in ``test_overlay.py``
(``test_thrifty_fallback_mutation_is_caught``); this module holds the
mutations that are pure config flips, no monkeypatching needed.
"""

from __future__ import annotations

from dataclasses import replace

from repro.scenarios import get_scenario, run_scenario


class TestDeepRelayCommitFallback:
    """epaxos-planet-deep-relay-crash-49: crash a first-hop relay (node 0)
    and an interior sub-relay (node 4) of fixed depth-2 zone trees."""

    def test_scenario_as_shipped_clears_its_floor(self):
        scenario = get_scenario("epaxos-planet-deep-relay-crash-49")
        result = run_scenario(scenario)
        result.raise_on_violations()
        assert result.completed_requests >= scenario.min_completed
        # The deep mechanism actually fired: interior relays (depth 1)
        # detected their silent sub-relay and re-sent its subtree.
        counters = result.counters()
        assert counters.get("epaxos.relay.depth.0.fallbacks", 0) >= 1
        assert counters.get("epaxos.relay.depth.1.fallbacks", 0) >= 1

    def test_disabling_commit_fallback_trips_the_progress_floor(self):
        scenario = get_scenario("epaxos-planet-deep-relay-crash-49")
        overrides = dict(scenario.config_overrides)
        overrides["overlay"] = {
            **overrides["overlay"], "commit_fallback_timeout": None,
        }
        mutated = run_scenario(replace(scenario, config_overrides=overrides))
        assert not mutated.ok
        assert mutated.completed_requests < scenario.min_completed
        # Only the liveness floor fires; losing commits to crashed relays
        # slows the run down (stalled dependency graphs, client retries)
        # but never corrupts agreed state.
        assert any(v.checker == "progress" for v in mutated.violations)
        assert all(v.checker == "progress" for v in mutated.violations)
