"""Whole-stack acceptance tests for the scenario engine.

Every canned scenario runs with the linearizability and log-invariant
checkers enabled; a mutation test verifies the checkers actually have
teeth; determinism regressions pin down byte-identical replay.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.quorum.systems import MajorityQuorum
from repro.scenarios import (
    Scenario,
    ScenarioEvent,
    all_scenarios,
    get_scenario,
    run_scenario,
)
from repro.sim.engine import Simulator

CANNED = sorted(all_scenarios())


class TestCannedScenarios:
    @pytest.mark.parametrize("name", CANNED)
    def test_scenario_passes_all_checkers(self, name):
        scenario = get_scenario(name)
        assert set(scenario.checks) == {"linearizability", "log_invariants"}
        result = run_scenario(scenario)
        result.raise_on_violations()
        assert result.ok
        assert result.completed_requests > 0
        assert len(result.history) >= result.completed_requests

    def test_library_is_large_enough(self):
        # The acceptance bar: at least 8 canned adversarial scenarios.
        assert len(CANNED) >= 8

    def test_fault_scenarios_actually_fire_faults(self):
        result = run_scenario(get_scenario("pig-crash-leader-during-round"))
        assert any("crash_leader" in line for line in result.events_fired)
        assert result.counters().get("faults.crashes", 0) >= 1

    def test_relay_churn_scenario_reshuffles(self):
        result = run_scenario(get_scenario("pig-relay-churn"))
        assert result.counters().get("pigpaxos.group_reshuffles", 0) >= 1

    def test_timeout_storm_exercises_relay_timeouts(self):
        result = run_scenario(get_scenario("pig-relay-timeout-storm"))
        counters = result.counters()
        assert counters.get("pigpaxos.relay_timeouts", 0) >= 1
        assert counters.get("net.messages_dropped", 0) >= 1


class TestMutationsAreCaught:
    def test_broken_quorum_is_caught_by_checkers(self, monkeypatch):
        """Quorum off by a lot: a leader that commits with phase2 quorum of 1
        splits the cluster's logs under a partition; the checkers must see it."""
        monkeypatch.setattr(MajorityQuorum, "phase2_size", property(lambda self: 1))
        result = run_scenario(get_scenario("pig-partition-leader-minority"))
        assert not result.ok
        checkers = {violation.checker for violation in result.violations}
        assert checkers  # at least one checker fired

    def test_vote_counting_mutation_is_caught(self, monkeypatch):
        """A tracker that is satisfied one vote early must trip a checker."""
        from repro.quorum import tracker as tracker_module

        original = tracker_module.VoteTracker.satisfied.fget
        monkeypatch.setattr(
            tracker_module.VoteTracker,
            "satisfied",
            property(lambda self: len(self._acks) >= self.required - 1),
        )
        assert original is not None
        result = run_scenario(get_scenario("pig-partition-leader-minority"))
        assert not result.ok


class TestDeterminism:
    def test_same_seed_produces_byte_identical_histories_and_metrics(self):
        scenario = get_scenario("pig-crash-follower")
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        first_ops = [op.signature() for op in first.history.operations()]
        second_ops = [op.signature() for op in second.history.operations()]
        assert first_ops == second_ops
        assert first.history.fingerprint() == second.history.fingerprint()
        assert first.fingerprint() == second.fingerprint()
        assert first.counters() == second.counters()
        assert first.events_processed == second.events_processed

    def test_different_seed_produces_different_history(self):
        scenario = get_scenario("pig-baseline-5")
        first = run_scenario(scenario)
        second = run_scenario(scenario.with_seed(scenario.seed + 1))
        assert first.fingerprint() != second.fingerprint()

    def test_simulator_reset_reruns_cleanly(self):
        def drive(sim: Simulator):
            observed = []
            rng = sim.random.stream("probe")

            def tick(tag):
                observed.append((tag, sim.now, rng.random()))
                if tag < 3:
                    sim.schedule(rng.uniform(0.1, 0.5), tick, tag + 1)

            sim.schedule(0.1, tick, 0)
            sim.run()
            return observed

        sim = Simulator(seed=99)
        first = drive(sim)
        sim.reset(seed=99)
        assert sim.now == 0.0
        assert sim.pending_events == 0
        second = drive(sim)
        assert first == second


class TestScenarioSpecValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioEvent(at=0.1, action="meteor-strike")

    def test_crash_needs_node(self):
        with pytest.raises(ConfigurationError):
            ScenarioEvent(at=0.1, action="crash")

    def test_event_after_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(
                name="late-event",
                duration=1.0,
                events=(ScenarioEvent.crash(2.0, node=1),),
            )

    def test_unknown_check_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="bad-check", checks=("vibes",))

    def test_out_of_range_drop_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioEvent.set_drop(0.5, probability=1.5)
        with pytest.raises(ConfigurationError):
            ScenarioEvent.set_drop(0.5, probability=-0.1)

    def test_non_positive_sluggish_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioEvent.sluggish(0.5, node=1, factor=0.0)

    def test_custom_scenario_runs(self):
        scenario = Scenario(
            name="custom-tiny",
            num_nodes=3,
            num_clients=2,
            duration=0.5,
            seed=1,
            events=(ScenarioEvent.sluggish(0.2, node=2, factor=4.0),),
        )
        result = run_scenario(scenario)
        result.raise_on_violations()
        assert result.completed_requests > 0
