"""Whole-stack acceptance tests for the scenario engine.

Every canned scenario runs with the linearizability and log-invariant
checkers enabled; a mutation test verifies the checkers actually have
teeth; determinism regressions pin down byte-identical replay.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.quorum.systems import MajorityQuorum
from repro.scenarios import (
    Scenario,
    ScenarioEvent,
    all_scenarios,
    get_scenario,
    run_scenario,
    scenarios_for_protocol,
)
from repro.sim.engine import Simulator

CANNED = sorted(all_scenarios())


class TestCannedScenarios:
    @pytest.mark.parametrize("name", CANNED)
    def test_scenario_passes_all_checkers(self, name):
        scenario = get_scenario(name)
        expected = {"linearizability", "log_invariants"}
        if scenario.protocol == "epaxos":
            # EPaxos has no slot log; it runs the instance/dependency-graph
            # invariant family on top (log checks skip themselves but the
            # quorum sanity check still applies).
            expected.add("epaxos_invariants")
        if scenario.min_completed > 0:
            # Scenarios with a liveness floor additionally enable the
            # progress check (e.g. the thrifty-overlay fallback scenarios).
            expected.add("progress")
        assert set(scenario.checks) == expected
        result = run_scenario(scenario)
        result.raise_on_violations()
        assert result.ok
        assert result.completed_requests > 0
        assert len(result.history) >= result.completed_requests

    def test_library_is_large_enough(self):
        # The acceptance bar: at least 8 canned adversarial scenarios for
        # the Paxos family plus at least 5 for EPaxos.
        assert len(CANNED) >= 13
        epaxos = scenarios_for_protocol("epaxos")
        assert len(epaxos) >= 5
        assert all(s.protocol == "epaxos" for s in epaxos.values())

    def test_fault_scenarios_actually_fire_faults(self):
        result = run_scenario(get_scenario("pig-crash-leader-during-round"))
        assert any("crash_leader" in line for line in result.events_fired)
        assert result.counters().get("faults.crashes", 0) >= 1

    def test_relay_churn_scenario_reshuffles(self):
        result = run_scenario(get_scenario("pig-relay-churn"))
        assert result.counters().get("pigpaxos.group_reshuffles", 0) >= 1

    def test_timeout_storm_exercises_relay_timeouts(self):
        result = run_scenario(get_scenario("pig-relay-timeout-storm"))
        counters = result.counters()
        assert counters.get("pigpaxos.relay_timeouts", 0) >= 1
        assert counters.get("net.messages_dropped", 0) >= 1


class TestEPaxosScenarios:
    def test_duplicate_torture_actually_duplicates(self):
        result = run_scenario(get_scenario("epaxos-duplicate-torture"))
        counters = result.counters()
        assert counters.get("net.messages_duplicated", 0) >= 100
        # The replicas saw (and ignored) retransmitted votes.
        duplicate_votes = sum(
            value for name, value in counters.items()
            if name.startswith("epaxos.duplicate_") and name.endswith("_replies")
        )
        assert duplicate_votes >= 1

    def test_hot_key_storm_is_contended(self):
        result = run_scenario(get_scenario("epaxos-hot-key-storm"))
        counters = result.counters()
        # Contention shows up as slow-path rounds (changed PreAccept replies).
        assert counters.get("epaxos.slow_path_rounds", 0) >= 1
        assert counters.get("epaxos.fast_path_commits", 0) >= 1

    def test_crash_scenario_degrades_but_stays_safe(self):
        result = run_scenario(get_scenario("epaxos-crash-degraded"))
        assert result.counters().get("faults.crashes", 0) >= 1
        assert result.ok

    def test_retries_are_deduplicated_not_reapplied(self):
        """Client retries under drops land in fresh instances; the session
        filter must be what keeps the run linearizable."""
        result = run_scenario(get_scenario("epaxos-drop-storm"))
        assert result.counters().get("epaxos.duplicate_commands_skipped", 0) >= 1

    @pytest.mark.parametrize(
        "name",
        ["epaxos-hot-key-storm", "epaxos-duplicate-torture", "epaxos-recovery-crash"],
    )
    def test_epaxos_scenarios_are_deterministic(self, name):
        scenario = get_scenario(name)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.fingerprint() == second.fingerprint()
        assert first.counters() == second.counters()
        assert first.events_processed == second.events_processed


class TestEPaxosRecoveryScenarios:
    def test_recovery_crash_actually_recovers_orphans(self):
        result = run_scenario(get_scenario("epaxos-recovery-crash"))
        counters = result.counters()
        assert counters.get("epaxos.recoveries_started", 0) >= 1
        assert counters.get("epaxos.recoveries_completed", 0) >= 1
        # Survivors hold no blocked instance at the end of the run.
        blocked = sum(
            len(node.replica._pending_execution)
            for node in result.cluster.nodes.values()
            if not node.crashed
        )
        assert blocked == 0
        # Post-crash throughput genuinely recovers (the degraded-mode twin
        # of this scenario collapses to single digits after the crash).
        post_crash = [op for op in result.history.completed() if op.completed_at > 0.7]
        assert len(post_crash) > 50

    def test_recovery_crash_floor_fails_without_recovery(self):
        """The progress floor is what *proves* recovery works: the same
        scenario with the knob removed must complete too few operations."""
        from dataclasses import replace

        scenario = get_scenario("epaxos-recovery-crash")
        degraded = replace(
            scenario,
            name="recovery-crash-disabled",
            config_overrides={"recovery_timeout": None},
        )
        result = run_scenario(degraded)
        violations = {v.checker for v in result.violations}
        assert violations == {"progress"}
        assert result.completed_requests < scenario.min_completed

    def test_relay_recovery_exercises_all_three_mechanisms(self):
        result = run_scenario(get_scenario("epaxos-relay-recovery-25"))
        counters = result.counters()
        assert counters.get("epaxos.recoveries_started", 0) >= 1
        assert counters.get("epaxos.commit_fallbacks", 0) >= 1
        assert counters.get("epaxos.leader_round_retries", 0) >= 1

    def test_drop_storm_recovery_adopts_dropped_commits(self):
        """Recovery also repairs drop-induced commit holes: a replica whose
        ECommit was dropped re-learns the decision through EPrepare."""
        from dataclasses import replace

        scenario = replace(
            get_scenario("epaxos-drop-storm"),
            name="drop-storm-with-recovery",
            seed=41,
            duration=2.5,
            config_overrides={"recovery_timeout": 0.25},
        )
        result = run_scenario(scenario)
        result.raise_on_violations()
        assert result.counters().get("epaxos.recoveries_adopted_commit", 0) >= 1


class TestMutationsAreCaught:
    def test_broken_quorum_is_caught_by_checkers(self, monkeypatch):
        """Quorum off by a lot: a leader that commits with phase2 quorum of 1
        splits the cluster's logs under a partition; the checkers must see it."""
        monkeypatch.setattr(MajorityQuorum, "phase2_size", property(lambda self: 1))
        result = run_scenario(get_scenario("pig-partition-leader-minority"))
        assert not result.ok
        checkers = {violation.checker for violation in result.violations}
        assert checkers  # at least one checker fired

    def test_vote_counting_mutation_is_caught(self, monkeypatch):
        """A tracker that is satisfied one vote early must trip a checker."""
        from repro.quorum import tracker as tracker_module

        original = tracker_module.VoteTracker.satisfied.fget
        monkeypatch.setattr(
            tracker_module.VoteTracker,
            "satisfied",
            property(lambda self: len(self._acks) >= self.required - 1),
        )
        assert original is not None
        result = run_scenario(get_scenario("pig-partition-leader-minority"))
        assert not result.ok

    def test_epaxos_vote_dedup_mutation_is_caught(self, monkeypatch):
        """Re-seed the pre-fix bug: every delivered PreAccept/Accept reply
        counts as a fresh vote, so retransmissions prematurely satisfy the
        fast-path quorum and conflict edges are lost.  The EPaxos checkers
        must see it under the duplicate-delivery storm."""
        from repro.epaxos.replica import EPaxosReplica

        def count_every_delivery(voters, voter):
            voters.add((voter, len(voters)))  # duplicates look distinct
            return True

        monkeypatch.setattr(
            EPaxosReplica, "_register_vote", staticmethod(count_every_delivery)
        )
        result = run_scenario(get_scenario("epaxos-duplicate-torture"))
        assert not result.ok
        checkers = {violation.checker for violation in result.violations}
        assert checkers & {
            "epaxos_conflict_ordering",
            "epaxos_execution_consistency",
            "epaxos_execution_order",
            "linearizability",
        }

    def test_epaxos_key_index_mutation_is_caught(self, monkeypatch):
        """Re-seed the pre-fix key index: a single last-writer-wins slot per
        key (instead of one per origin replica) silently drops dependency
        edges under contention; replicas then execute conflicting commands
        in different orders."""
        from repro.epaxos.replica import EPaxosReplica

        def last_writer_wins(self, command, instance):
            self._key_index[command.key] = {instance[0]: instance[1]}

        monkeypatch.setattr(EPaxosReplica, "_record_key", last_writer_wins)
        result = run_scenario(get_scenario("epaxos-hot-key-storm"))
        assert not result.ok
        checkers = {violation.checker for violation in result.violations}
        assert "epaxos_execution_consistency" in checkers or "epaxos_conflict_ordering" in checkers

    def test_epaxos_forced_noop_recovery_is_caught(self, monkeypatch):
        """A recovery that no-ops every orphan -- ignoring the commit and
        accept evidence its prepare round gathered -- must trip the EPaxos
        invariants: some replica committed (and executed) the real command,
        so the no-op commit diverges from it."""
        from dataclasses import replace

        from repro.epaxos.replica import EPaxosReplica, NoOp

        def noop_everything(self, recovery, msg):
            if msg.voter in recovery.replies:
                return
            recovery.replies[msg.voter] = msg
            if len(recovery.replies) >= self.quorum.phase1_size:
                self._recovery_accept(recovery, NoOp(), 1, frozenset(), noop=True)

        monkeypatch.setattr(EPaxosReplica, "_record_prepare_reply", noop_everything)
        scenario = replace(
            get_scenario("epaxos-drop-storm"),
            name="drop-storm-noop-mutation",
            seed=41,
            duration=2.5,
            config_overrides={"recovery_timeout": 0.25},
        )
        result = run_scenario(scenario)
        assert not result.ok
        checkers = {violation.checker for violation in result.violations}
        assert checkers & {
            "epaxos_instance_agreement",
            "epaxos_execution_consistency",
            "epaxos_conflict_ordering",
            "linearizability",
        }

    def test_epaxos_planner_order_mutation_is_caught(self, monkeypatch):
        """A planner that drops the (seq, id) cycle tie-break (sorting by
        instance id alone) executes cycles in the wrong deterministic order;
        the execution-order checker must flag it."""
        from repro.epaxos.graph import DependencyGraph

        original = DependencyGraph.execution_order

        def id_sorted(self, root):
            order, visited = original(self, root)
            return sorted(order), visited

        monkeypatch.setattr(DependencyGraph, "execution_order", id_sorted)
        result = run_scenario(get_scenario("epaxos-hot-key-storm"))
        assert not result.ok
        checkers = {violation.checker for violation in result.violations}
        assert "epaxos_execution_order" in checkers


class TestDeterminism:
    def test_same_seed_produces_byte_identical_histories_and_metrics(self):
        scenario = get_scenario("pig-crash-follower")
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        first_ops = [op.signature() for op in first.history.operations()]
        second_ops = [op.signature() for op in second.history.operations()]
        assert first_ops == second_ops
        assert first.history.fingerprint() == second.history.fingerprint()
        assert first.fingerprint() == second.fingerprint()
        assert first.counters() == second.counters()
        assert first.events_processed == second.events_processed

    def test_different_seed_produces_different_history(self):
        scenario = get_scenario("pig-baseline-5")
        first = run_scenario(scenario)
        second = run_scenario(scenario.with_seed(scenario.seed + 1))
        assert first.fingerprint() != second.fingerprint()

    def test_simulator_reset_reruns_cleanly(self):
        def drive(sim: Simulator):
            observed = []
            rng = sim.random.stream("probe")

            def tick(tag):
                observed.append((tag, sim.now, rng.random()))
                if tag < 3:
                    sim.schedule(rng.uniform(0.1, 0.5), tick, tag + 1)

            sim.schedule(0.1, tick, 0)
            sim.run()
            return observed

        sim = Simulator(seed=99)
        first = drive(sim)
        sim.reset(seed=99)
        assert sim.now == 0.0
        assert sim.pending_events == 0
        second = drive(sim)
        assert first == second


class TestScenarioSpecValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioEvent(at=0.1, action="meteor-strike")

    def test_crash_needs_node(self):
        with pytest.raises(ConfigurationError):
            ScenarioEvent(at=0.1, action="crash")

    def test_event_after_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(
                name="late-event",
                duration=1.0,
                events=(ScenarioEvent.crash(2.0, node=1),),
            )

    def test_unknown_check_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="bad-check", checks=("vibes",))

    def test_out_of_range_drop_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioEvent.set_drop(0.5, probability=1.5)
        with pytest.raises(ConfigurationError):
            ScenarioEvent.set_drop(0.5, probability=-0.1)

    def test_out_of_range_duplicate_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioEvent.duplicate_storm(0.5, probability=1.0)
        with pytest.raises(ConfigurationError):
            ScenarioEvent.duplicate_storm(0.5, probability=-0.2)

    def test_non_positive_sluggish_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioEvent.sluggish(0.5, node=1, factor=0.0)

    def test_epaxos_accepts_only_session_window_override(self):
        from repro.scenarios.runner import ScenarioRunner

        good = Scenario(name="ok", protocol="epaxos", duration=0.2,
                        checks=("linearizability",),
                        config_overrides={"session_window": 8})
        cluster = ScenarioRunner(good).build()
        assert cluster.nodes[0].replica._session_window == 8

        bad = Scenario(name="bad", protocol="epaxos", duration=0.2,
                       checks=("linearizability",),
                       config_overrides={"heartbeat_interval": 0.01})
        with pytest.raises(ConfigurationError):
            ScenarioRunner(bad).build()

    def test_custom_scenario_runs(self):
        scenario = Scenario(
            name="custom-tiny",
            num_nodes=3,
            num_clients=2,
            duration=0.5,
            seed=1,
            events=(ScenarioEvent.sluggish(0.2, node=2, factor=4.0),),
        )
        result = run_scenario(scenario)
        result.raise_on_violations()
        assert result.completed_requests > 0
