"""Property tests for the sharding layer (:mod:`repro.shard`).

The router is the one component every sharded client trusts blindly: a key
that maps to two shards (or none) silently splits one register's history
across two consensus groups, which the per-group checkers cannot see.  So
the properties here are exhaustive over the keyspace, not sampled: every
key maps to exactly one shard, the shard ranges partition the keyspace
exactly, and the mapping is deterministic and iteration-order independent.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint import LintEngine, default_rules
from repro.shard import (
    SHARD_ENDPOINT_STRIDE,
    ShardAwareLatency,
    ShardMap,
    ShardRouter,
    physical_node,
    round_robin_leaders,
    shard_endpoint,
    shard_of_endpoint,
)
from repro.sim.rng import RandomStreams

REPO_ROOT = Path(__file__).resolve().parent.parent
SHARD_PACKAGE = REPO_ROOT / "src" / "repro" / "shard"


def key_for_index(index, key_size=8):
    """The workload generator's fixed-width key format (k0000012)."""
    return f"k{index:0{max(1, key_size - 1)}d}"

#: (num_shards, num_keys) shapes covering 1 shard, even and uneven splits,
#: prime counts and the one-key-per-shard extreme.
SHAPES = [(1, 1), (1, 25), (2, 25), (4, 10), (4, 25), (7, 25), (8, 1000), (25, 25)]


class TestShardMapPartition:
    @pytest.mark.parametrize("num_shards,num_keys", SHAPES)
    def test_every_key_maps_to_exactly_one_shard(self, num_shards, num_keys):
        shard_map = ShardMap(num_shards, num_keys)
        key_size = 8
        for index in range(num_keys):
            key = key_for_index(index, key_size)
            owners = [
                shard
                for shard in range(num_shards)
                if shard_map.range_of(shard)[0] <= index < shard_map.range_of(shard)[1]
            ]
            assert owners == [shard_map.shard_of_key(key)]
            assert shard_map.shard_of_index(index) == owners[0]

    @pytest.mark.parametrize("num_shards,num_keys", SHAPES)
    def test_ranges_partition_keyspace_exactly(self, num_shards, num_keys):
        shard_map = ShardMap(num_shards, num_keys)
        ranges = [shard_map.range_of(shard) for shard in range(num_shards)]
        # Contiguous: each range starts where the previous ended.
        assert ranges[0][0] == 0
        assert ranges[-1][1] == num_keys
        for (_, prev_end), (start, _) in zip(ranges, ranges[1:]):
            assert start == prev_end
        # Non-empty and totals to the keyspace (no overlap possible given
        # contiguity + the total).
        assert all(end > start for start, end in ranges)
        assert sum(end - start for start, end in ranges) == num_keys

    @pytest.mark.parametrize("num_shards,num_keys", SHAPES)
    def test_mapping_is_deterministic_and_order_independent(self, num_shards, num_keys):
        keys = [key_for_index(index, 8) for index in range(num_keys)]
        baseline = {key: ShardMap(num_shards, num_keys).shard_of_key(key) for key in keys}
        # A fresh map, queried in a shuffled order, agrees key-for-key.
        shuffled = list(keys)
        random.Random(17).shuffle(shuffled)
        remap = ShardMap(num_shards, num_keys)
        assert {key: remap.shard_of_key(key) for key in shuffled} == baseline
        # And re-querying the same map is stable.
        assert [remap.shard_of_key(key) for key in keys] == [baseline[key] for key in keys]

    def test_non_conforming_keys_hash_stably(self):
        # Keys outside the generator's k<digits> format fall back to CRC32:
        # deterministic across processes (unlike hash()) and in range.
        shard_map = ShardMap(4, 25)
        for key in ("watermark", "", "k", "kxyz", "k-3", "key0001"):
            shard = shard_map.shard_of_key(key)
            assert 0 <= shard < 4
            assert ShardMap(4, 25).shard_of_key(key) == shard

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            ShardMap(0, 10)
        with pytest.raises(ConfigurationError):
            ShardMap(11, 10)  # more shards than keys
        with pytest.raises(ConfigurationError):
            ShardMap(1, 0)


class TestAddressing:
    def test_endpoint_roundtrip(self):
        for shard in (0, 1, 7, 63):
            for node in (0, 4, 24, SHARD_ENDPOINT_STRIDE - 1):
                endpoint = shard_endpoint(shard, node)
                assert physical_node(endpoint) == node
                assert shard_of_endpoint(endpoint) == shard

    def test_shard_zero_uses_raw_physical_ids(self):
        # The unsharded deployment *is* shard 0; its endpoints must be the
        # untranslated node ids so the single-group path stays byte-identical.
        assert [shard_endpoint(0, node) for node in range(5)] == [0, 1, 2, 3, 4]

    def test_round_robin_leaders_spread_across_nodes(self):
        nodes = [0, 1, 2, 3, 4]
        leaders = round_robin_leaders(4, nodes)
        assert [physical_node(leader) for leader in leaders] == [0, 1, 2, 3]
        assert [shard_of_endpoint(leader) for leader in leaders] == [0, 1, 2, 3]
        # More shards than nodes: placement wraps.
        wrapped = round_robin_leaders(7, nodes)
        assert [physical_node(leader) for leader in wrapped] == [0, 1, 2, 3, 4, 0, 1]

    def test_shard_aware_latency_folds_endpoints(self):
        class FixedLatency:
            def delay(self, src, dst, rng):
                return 0.001 * (src * 100 + dst)

            def describe(self):
                return "Fixed"

        latency = ShardAwareLatency(FixedLatency())
        rng = RandomStreams(1).stream("test")
        raw = latency.delay(1, 2, rng)
        assert latency.delay(shard_endpoint(3, 1), shard_endpoint(2, 2), rng) == raw
        assert latency.delay(shard_endpoint(3, 1), 2, rng) == raw
        assert "Fixed" in latency.describe()


class TestShardRouter:
    def _router(self, num_shards=4, num_keys=25, nodes=(0, 1, 2, 3, 4)):
        nodes = list(nodes)
        groups = [
            [shard_endpoint(shard, node) for node in nodes] for shard in range(num_shards)
        ]
        return ShardRouter(
            ShardMap(num_shards, num_keys),
            groups,
            round_robin_leaders(num_shards, nodes),
        )

    def test_routes_key_to_owning_group(self):
        router = self._router()
        for index in range(25):
            key = key_for_index(index, 8)
            shard = router.shard_of_key(key)
            group = router.group_of(shard)
            assert router.leader_of(shard) in group
            assert all(shard_of_endpoint(endpoint) == shard for endpoint in group)

    def test_rejects_mismatched_groups_and_leaders(self):
        shard_map = ShardMap(2, 10)
        groups = [[shard_endpoint(0, 0)], [shard_endpoint(1, 0)]]
        with pytest.raises(ConfigurationError):
            ShardRouter(shard_map, groups[:1], [0, shard_endpoint(1, 0)])
        with pytest.raises(ConfigurationError):
            ShardRouter(shard_map, groups, [0])
        with pytest.raises(ConfigurationError):
            # Leader outside its own group.
            ShardRouter(shard_map, groups, [0, shard_endpoint(1, 4)])
        with pytest.raises(ConfigurationError):
            ShardRouter(shard_map, [groups[0], []], [0, shard_endpoint(1, 0)])


class TestShardPackageHygiene:
    def test_shard_package_is_clean_under_unordered_iteration_rule(self):
        # The router feeds every client's target choice; an unordered dict
        # iteration anywhere in the package would thread scheduling
        # nondeterminism into message order.  The package must be clean
        # under the rule *without* suppressions.
        engine = LintEngine(default_rules(["no-unordered-iteration"]))
        files = sorted(SHARD_PACKAGE.glob("*.py"))
        assert files, "shard package not found"
        findings, suppressions = engine.lint_paths(files)
        assert findings == []
        assert suppressions == []
