"""Cross-shard correctness battery.

The canned sharded scenarios already run through the full-checker sweep in
``tests/test_scenarios.py``; this file holds the *targeted* assertions that
make sharding trustworthy: faults confined to one group leave the others
live, per-shard counters actually expose load placement, the builder
rejects configurations it cannot honour, and -- the teeth test -- a client
that routes a key to the wrong group's leader is caught by the
linearizability checker even though every per-group safety check stays
green (the wrong group commits the misrouted command perfectly happily).
"""

from __future__ import annotations

import pytest

from repro.checkers.history import HistoryRecorder
from repro.checkers.linearizability import check_linearizability
from repro.cluster.builder import ClusterBuilder
from repro.errors import ConfigurationError
from repro.scenarios import get_scenario, run_scenario
from repro.shard import physical_node, shard_of_endpoint
from repro.sim.metrics import shard_summary, shard_traffic
from repro.workload.spec import WorkloadSpec


def _sharded_builder(recorder=None, shards=4, protocol="paxos", **kwargs):
    builder = (
        ClusterBuilder()
        .protocol(protocol)
        .nodes(kwargs.pop("num_nodes", 5))
        .clients(kwargs.pop("num_clients", 4))
        .seed(kwargs.pop("seed", 9))
        .workload(kwargs.pop("workload", WorkloadSpec.checking_default(num_keys=8)))
        .shards(shards)
    )
    if recorder is not None:
        builder.history_recorder(recorder)
    return builder


class TestShardedFaultScenarios:
    def test_crash_shard_leader_keeps_other_shards_live(self):
        result = run_scenario(get_scenario("sharded-crash-shard-leader"))
        result.raise_on_violations()
        assert result.counters().get("faults.crashes", 0) >= 1
        traffic = shard_traffic(result.counters())
        assert sorted(traffic) == [0, 1, 2, 3]
        # Every shard -- including shard 1, whose leader's machine died --
        # completes operations (the crash heals mid-run).
        assert all(stats["completions"] > 0 for _, stats in sorted(traffic.items()))

    def test_partition_straddle_stalls_only_minority_side_shards(self):
        result = run_scenario(get_scenario("sharded-partition-straddle"))
        result.raise_on_violations()
        traffic = shard_traffic(result.counters())
        # Shards 2/3 lead from the majority side and ride through the
        # partition; shards 0/1 lead from the stranded minority and lose
        # most of the partition window.  The gap is the signature.
        majority_side = traffic[2]["completions"] + traffic[3]["completions"]
        minority_side = traffic[0]["completions"] + traffic[1]["completions"]
        assert majority_side > minority_side
        assert all(stats["completions"] > 0 for _, stats in sorted(traffic.items()))

    def test_hot_shard_zipfian_shows_imbalance_in_counters(self):
        result = run_scenario(get_scenario("sharded-hot-shard-zipf"))
        result.raise_on_violations()
        summary = shard_summary(result.counters())
        assert summary["num_shards"] == 4.0
        # Zipfian skew concentrates on the low key indices, all owned by
        # shard 0: it must dominate, and visibly so.
        traffic = shard_traffic(result.counters())
        hottest = max(sorted(traffic), key=lambda shard: traffic[shard]["completions"])
        assert hottest == 0
        assert summary["hottest_share"] > 0.5
        assert summary["completions_total"] == result.completed_requests


class _MisroutingRouter:
    """Wraps a real router but shifts every key one shard over."""

    def __init__(self, inner):
        self._inner = inner

    @property
    def num_shards(self):
        return self._inner.num_shards

    @property
    def leaders(self):
        return self._inner.leaders

    def shard_of_key(self, key):
        return (self._inner.shard_of_key(key) + 1) % self._inner.num_shards

    def group_of(self, shard):
        return self._inner.group_of(shard)

    def leader_of(self, shard):
        return self._inner.leader_of(shard)


class TestMisroutingMutation:
    def test_client_sending_keys_to_wrong_group_trips_linearizability(self):
        # Mutation test: ONE client routes every key to the wrong group's
        # leader, so a key's operations split across two consensus groups.
        # Each group commits its share with perfect internal consistency --
        # the per-group log checks MUST stay green -- but reads through the
        # correct group never observe the misrouted writes, which is
        # exactly the split-brain the linearizability checker exists for.
        recorder = HistoryRecorder()
        cluster = _sharded_builder(recorder=recorder).build()
        victim = cluster.clients[0]
        assert victim._router is not None
        victim._router = _MisroutingRouter(victim._router)
        cluster.start()
        cluster.sim.run(until=1.0)

        from repro.checkers.invariants import run_log_checks

        for view in cluster.shard_views():
            assert run_log_checks(view) == []
        violations = check_linearizability(recorder.history())
        assert violations, (
            "misrouted client went undetected: a key's history split across "
            "two groups must violate linearizability"
        )

    def test_control_run_without_mutation_is_clean(self):
        # The control for the mutation above: identical build, no tampering.
        recorder = HistoryRecorder()
        cluster = _sharded_builder(recorder=recorder).build()
        cluster.start()
        cluster.sim.run(until=1.0)
        assert check_linearizability(recorder.history()) == []


class TestBuilderRejections:
    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            ClusterBuilder().shards(0)

    def test_rejects_more_shards_than_keys(self):
        builder = (
            ClusterBuilder()
            .protocol("paxos")
            .nodes(5)
            .clients(2)
            .workload(WorkloadSpec.checking_default(num_keys=4))
            .shards(8)
        )
        with pytest.raises(ConfigurationError, match="num_keys"):
            builder.build()

    def test_rejects_relay_groups_incompatible_with_sharding(self):
        # Each shard instance fans out over the SAME physical node set, so
        # relay groups must still fit in num_nodes - 1 followers.
        builder = (
            ClusterBuilder()
            .protocol("pigpaxos")
            .nodes(5)
            .clients(2)
            .relay_groups(5)
            .workload(WorkloadSpec.checking_default(num_keys=8))
            .shards(2)
        )
        with pytest.raises(ConfigurationError, match="relay"):
            builder.build()

    def test_rejects_explicit_initial_leader_override(self):
        # Sharded leader placement is owned by round_robin_leaders; a
        # hand-pinned initial_leader would silently apply to every group.
        from repro.protocol.config import ProtocolConfig

        builder = (
            ClusterBuilder()
            .protocol("paxos")
            .nodes(5)
            .clients(2)
            .protocol_config(ProtocolConfig(initial_leader=2))
            .workload(WorkloadSpec.checking_default(num_keys=8))
            .shards(2)
        )
        with pytest.raises(ConfigurationError, match="initial_leader"):
            builder.build()


class TestShardedDeterminism:
    def test_leaders_are_round_robin_across_machines(self):
        cluster = _sharded_builder().build()
        cluster.start()
        cluster.sim.run(until=0.2)
        leaders = [cluster.shard_leader_endpoint(shard) for shard in range(4)]
        assert [physical_node(leader) for leader in leaders] == [0, 1, 2, 3]
        assert [shard_of_endpoint(leader) for leader in leaders] == [0, 1, 2, 3]

    def test_same_seed_same_fingerprint(self):
        scenario = get_scenario("paxos-sharded-4")
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.fingerprint() == second.fingerprint()
        assert first.completed_requests == second.completed_requests
