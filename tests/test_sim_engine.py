"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, fired.append, ("b",))
        queue.push(1.0, fired.append, ("a",))
        queue.push(3.0, fired.append, ("c",))
        order = []
        while True:
            event = queue.pop()
            if event is None:
                break
            order.append(event.time)
        assert order == [1.0, 2.0, 3.0]

    def test_same_time_events_preserve_insertion_order(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        second = queue.push(1.0, lambda: None)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_priority_breaks_ties_before_sequence(self):
        queue = EventQueue()
        low = queue.push(1.0, lambda: None, priority=5)
        high = queue.push(1.0, lambda: None, priority=0)
        assert queue.pop() is high
        assert queue.pop() is low

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        cancelled = queue.push(1.0, lambda: None)
        kept = queue.push(2.0, lambda: None)
        queue.cancel(cancelled)
        assert queue.pop() is kept
        assert queue.pop() is None

    def test_len_tracks_live_events(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.cancel(event)
        assert len(queue) == 1

    def test_negative_time_validated_at_engine_boundary(self):
        # The queue itself is branch-lean and trusts its callers; negative
        # times are rejected once, at the Simulator scheduling boundary.
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(-1.0, lambda: None)

    def test_direct_event_cancel_keeps_len_exact(self):
        # Regression: Event.cancel() used to skip the queue's live-count
        # decrement, so len(queue) drifted unless queue.cancel() was used.
        # All three cancel paths now share one implementation.
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1
        event.cancel()  # idempotent
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_corrupt_len(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped is first
        assert len(queue) == 1
        # Cancelling an already-popped event must not double-decrement.
        popped.cancel()
        assert len(queue) == 1

    def test_timer_handle_cancel_keeps_len_exact(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        handle.cancel()
        assert sim.pending_events == 1
        handle.cancel()
        assert sim.pending_events == 1

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 5.0

    def test_clear_empties_queue(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert queue.pop() is None
        assert len(queue) == 0


class TestSimulator:
    def test_schedule_and_run_advances_clock(self, sim):
        fired = []
        sim.schedule(0.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.5]
        assert sim.now == 0.5

    def test_run_until_stops_before_future_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "late")
        end = sim.run(until=0.5)
        assert fired == []
        assert end == 0.5
        sim.run(until=2.0)
        assert fired == ["late"]

    def test_events_fire_in_order_even_when_scheduled_out_of_order(self, sim):
        fired = []
        sim.schedule(0.3, fired.append, 3)
        sim.schedule(0.1, fired.append, 1)
        sim.schedule(0.2, fired.append, 2)
        sim.run()
        assert fired == [1, 2, 3]

    def test_nested_scheduling_from_callbacks(self, sim):
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(0.1, lambda: fired.append("inner"))

        sim.schedule(0.1, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == pytest.approx(0.2)

    def test_cancel_prevents_execution(self, sim):
        fired = []
        handle = sim.schedule(0.1, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_schedule_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_the_past_rejected(self, sim):
        sim.schedule(0.2, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.1, lambda: None)

    def test_max_events_limits_execution(self, sim):
        fired = []
        for index in range(5):
            sim.schedule(0.1 * (index + 1), fired.append, index)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_run_is_not_reentrant(self, sim):
        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0.1, reenter)
        sim.run()

    def test_reset_clears_pending_events_and_clock(self, sim):
        sim.schedule(0.5, lambda: None)
        sim.run()
        sim.reset(seed=7)
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.events_processed == 0

    def test_events_processed_counts(self, sim):
        for _ in range(3):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_mid_run_reset_keeps_bookkeeping_exact(self, sim):
        # Regression for the deferred-counter experiment: a callback may
        # reset() the simulator mid-run; the queue length and event counter
        # must reflect post-reset reality, not pre-reset accumulation.
        fired = []

        def resetter():
            sim.reset()
            sim.schedule(0.1, fired.append, "a")
            sim.schedule(0.2, fired.append, "b")

        sim.schedule(0.1, resetter)
        sim.run(max_events=2)
        assert fired == ["a"]
        assert sim.pending_events == 1
        assert sim.events_processed == 1  # reset zeroed the pre-reset count

    def test_run_to_until_with_empty_queue_advances_clock(self, sim):
        sim.run(until=1.5)
        assert sim.now == 1.5

    def test_call_soon_runs_at_current_time(self, sim):
        times = []
        sim.schedule(0.25, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [0.25]


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        from repro.sim.rng import RandomStreams

        a = RandomStreams(1).stream("x")
        b = RandomStreams(1).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        from repro.sim.rng import RandomStreams

        streams = RandomStreams(1)
        x = streams.stream("x")
        y = streams.stream("y")
        assert [x.random() for _ in range(3)] != [y.random() for _ in range(3)]

    def test_stream_is_cached(self):
        from repro.sim.rng import RandomStreams

        streams = RandomStreams(3)
        assert streams.stream("a") is streams.stream("a")

    def test_fork_changes_master_seed(self):
        from repro.sim.rng import RandomStreams

        parent = RandomStreams(5)
        child = parent.fork("worker")
        assert child.master_seed != parent.master_seed

    def test_simulator_uses_seeded_streams(self):
        a = Simulator(seed=9).random.stream("net").random()
        b = Simulator(seed=9).random.stream("net").random()
        assert a == b
