"""Unit tests for counters, gauges, histograms, time-series and the registry."""

from __future__ import annotations

import pytest

from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries


class TestCounter:
    def test_increment_accumulates(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(2.5)
        assert counter.value == 3.5

    def test_increment_is_branch_free(self):
        # Counter.increment fires for every message sent/delivered, so it is
        # a single unguarded add; the monotonicity contract is the caller's.
        counter = Counter("c")
        counter.increment(0.0)
        counter.increment(7)
        assert counter.value == 7.0

    def test_reset(self):
        counter = Counter("c")
        counter.increment(4)
        counter.reset()
        assert counter.value == 0.0


class TestGauge:
    def test_set_and_max_tracking(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(1.0)
        assert gauge.value == 1.0
        assert gauge.max_value == 3.0

    def test_add_moves_value(self):
        gauge = Gauge("g")
        gauge.add(2.0)
        gauge.add(-1.0)
        assert gauge.value == 1.0


class TestHistogram:
    def test_mean_min_max(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.mean == pytest.approx(2.0)
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.count == 3

    def test_percentiles_interpolate(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == pytest.approx(50.5)
        assert histogram.percentile(99) == pytest.approx(99.01)
        assert histogram.median == histogram.percentile(50)

    def test_empty_histogram_is_zero(self):
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        assert histogram.percentile(99) == 0.0

    def test_percentile_bounds_validated(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_snapshot_keys(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        snapshot = histogram.snapshot()
        assert set(snapshot) == {"count", "mean", "min", "max", "p50", "p90", "p99"}


class TestTimeSeries:
    def test_records_bucketed_by_interval(self):
        series = TimeSeries("t", interval=1.0)
        series.record(0.5)
        series.record(0.9)
        series.record(1.1)
        values = dict(series.series(0.0, 2.0))
        assert values[0.0] == 2.0
        assert values[1.0] == 1.0

    def test_rates_divide_by_interval(self):
        series = TimeSeries("t", interval=0.5)
        series.record(0.1)
        series.record(0.2)
        rates = dict(series.rates(0.0, 0.5))
        assert rates[0.0] == pytest.approx(4.0)

    def test_missing_buckets_are_zero(self):
        series = TimeSeries("t", interval=1.0)
        series.record(2.5)
        values = dict(series.series(0.0, 3.0))
        assert values[0.0] == 0.0 and values[1.0] == 0.0 and values[2.0] == 1.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries("t", interval=0.0)


class TestRegistry:
    def test_named_metrics_are_cached(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.timeseries("t") is registry.timeseries("t")
        assert registry.gauge("g") is registry.gauge("g")

    def test_snapshot_contains_all_sections(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1.0}
        assert snapshot["gauges"] == {"g": 2}
        assert "h" in snapshot["histograms"]

    def test_clock_is_used(self):
        registry = MetricsRegistry(clock=lambda: 12.5)
        assert registry.now == 12.5
