"""Unit tests for commands, the KV store, the replicated log and snapshots."""

from __future__ import annotations

import pytest

from repro.errors import StateMachineError
from repro.protocol.ballot import Ballot
from repro.statemachine.command import Command, NoOp, OpType
from repro.statemachine.kvstore import KVStore
from repro.statemachine.log import ReplicatedLog
from repro.statemachine.snapshot import Snapshot


def put(key: str = "k", size: int = 8, uid_hint: int = 0) -> Command:
    return Command(op=OpType.PUT, key=key, payload_size=size)


def get(key: str = "k") -> Command:
    return Command(op=OpType.GET, key=key, payload_size=0)


class TestCommand:
    def test_read_write_flags(self):
        assert get().is_read and not get().is_write
        assert put().is_write and not put().is_read
        delete = Command(op=OpType.DELETE, key="k")
        assert delete.is_write

    def test_payload_bytes_include_key_and_value(self):
        command = Command(op=OpType.PUT, key="abcd", payload_size=100)
        assert command.payload_bytes() == 104
        read = Command(op=OpType.GET, key="abcd")
        assert read.payload_bytes() == 4

    def test_uids_are_unique(self):
        assert put().uid != put().uid

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Command(op=OpType.PUT, key="k", payload_size=-1)

    def test_conflicts_same_key_write(self):
        a = put("x")
        b = get("x")
        c = get("y")
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)
        assert not b.conflicts_with(c)
        assert not get("x").conflicts_with(get("x"))  # read-read never conflicts

    def test_noop_has_no_payload(self):
        noop = NoOp()
        assert noop.payload_bytes() == 0
        assert not noop.is_read and not noop.is_write


class TestKVStore:
    def test_put_get_delete_roundtrip(self):
        store = KVStore()
        store.apply(Command(op=OpType.PUT, key="a", value="1"))
        assert store.get("a") == "1"
        result = store.apply(Command(op=OpType.GET, key="a"))
        assert result.value == "1" and result.existed
        store.apply(Command(op=OpType.DELETE, key="a"))
        assert store.get("a") is None

    def test_get_missing_key(self):
        store = KVStore()
        result = store.apply(Command(op=OpType.GET, key="missing"))
        assert result.success and result.value is None and not result.existed

    def test_put_without_value_stores_placeholder(self):
        store = KVStore()
        store.apply(Command(op=OpType.PUT, key="a", payload_size=128))
        assert store.get("a") == "<128B>"

    def test_applied_count_includes_noops(self):
        store = KVStore()
        store.apply(NoOp())
        store.apply(Command(op=OpType.PUT, key="a", value="1"))
        assert store.applied_count == 2

    def test_restore_replaces_contents(self):
        store = KVStore()
        store.apply(Command(op=OpType.PUT, key="a", value="1"))
        store.restore({"b": "2"}, applied_count=5)
        assert store.get("a") is None
        assert store.get("b") == "2"
        assert store.applied_count == 5


class TestReplicatedLog:
    def test_accept_and_commit_and_execute_in_order(self):
        log = ReplicatedLog()
        ballot = Ballot(1, 0)
        commands = [put(f"k{i}") for i in range(3)]
        for slot, command in enumerate(commands, start=1):
            log.accept(slot, ballot, command)
            log.commit(slot, ballot, command)
        store = KVStore()
        executed = log.execute_ready(store.apply)
        assert [entry.slot for entry, _ in executed] == [1, 2, 3]
        assert log.next_execute_slot == 4

    def test_execution_stops_at_gap(self):
        log = ReplicatedLog()
        ballot = Ballot(1, 0)
        log.commit(1, ballot, put("a"))
        log.commit(3, ballot, put("c"))
        executed = log.execute_ready(lambda c: None)
        assert [entry.slot for entry, _ in executed] == [1]
        # Filling the gap unblocks the rest.
        log.commit(2, ballot, put("b"))
        executed = log.execute_ready(lambda c: None)
        assert [entry.slot for entry, _ in executed] == [2, 3]

    def test_commit_is_idempotent(self):
        log = ReplicatedLog()
        ballot = Ballot(1, 0)
        command = put("a")
        log.commit(2, ballot, command)
        log.commit(2, ballot, command)
        assert log.is_committed(2)

    def test_conflicting_commit_raises(self):
        log = ReplicatedLog()
        ballot = Ballot(1, 0)
        log.commit(1, ballot, put("a"))
        with pytest.raises(StateMachineError):
            log.commit(1, ballot, put("b"))

    def test_overwriting_committed_slot_with_other_command_raises(self):
        log = ReplicatedLog()
        ballot = Ballot(1, 0)
        log.commit(1, ballot, put("a"))
        with pytest.raises(StateMachineError):
            log.accept(1, Ballot(2, 1), put("b"))

    def test_stale_ballot_accept_does_not_overwrite(self):
        log = ReplicatedLog()
        newer = Ballot(3, 1)
        older = Ballot(1, 0)
        first = put("new")
        log.accept(1, newer, first)
        log.accept(1, older, put("old"))
        assert log.get(1).command is first

    def test_slots_are_one_based(self):
        log = ReplicatedLog()
        with pytest.raises(StateMachineError):
            log.accept(0, Ballot(1, 0), put())

    def test_first_gap_and_uncommitted(self):
        log = ReplicatedLog()
        ballot = Ballot(1, 0)
        log.accept(1, ballot, put("a"))
        log.accept(3, ballot, put("c"))
        assert log.first_gap() == 2
        assert log.uncommitted_slots() == [1, 3]

    def test_committed_prefix_uids_stops_at_gap(self):
        log = ReplicatedLog()
        ballot = Ballot(1, 0)
        a, c = put("a"), put("c")
        log.commit(1, ballot, a)
        log.commit(3, ballot, c)
        assert log.committed_prefix_uids() == [a.uid]


class TestSnapshot:
    def test_capture_and_restore(self):
        store = KVStore()
        store.apply(Command(op=OpType.PUT, key="a", value="1"))
        snapshot = Snapshot.capture(store, last_executed_slot=7)
        fresh = KVStore()
        snapshot.restore_into(fresh)
        assert fresh.get("a") == "1"
        assert snapshot.last_executed_slot == 7
        assert snapshot.size_bytes == 2

    def test_snapshot_is_isolated_from_store_mutation(self):
        store = KVStore()
        store.apply(Command(op=OpType.PUT, key="a", value="1"))
        snapshot = Snapshot.capture(store, last_executed_slot=1)
        store.apply(Command(op=OpType.PUT, key="a", value="2"))
        assert snapshot.data["a"] == "1"


class TestClientSessionCache:
    def test_put_then_get_roundtrips(self):
        from repro.statemachine.sessions import ClientSessionCache

        cache = ClientSessionCache(window=4)
        cache.put(1000, 1, "r1")
        assert cache.get(1000, 1) == "r1"
        assert cache.get(1000, 2) is None
        assert cache.get(1001, 1) is None

    def test_window_evicts_oldest_entry(self):
        from repro.statemachine.sessions import ClientSessionCache

        cache = ClientSessionCache(window=3)
        for request_id in (1, 2, 3, 4):
            cache.put(1000, request_id, f"r{request_id}")
        assert cache.get(1000, 1) is None  # evicted
        assert cache.get(1000, 2) == "r2"
        assert cache.get(1000, 4) == "r4"
        assert cache.evictions == 1
        assert cache.session_size(1000) == 3

    def test_get_refreshes_lru_position(self):
        from repro.statemachine.sessions import ClientSessionCache

        cache = ClientSessionCache(window=2)
        cache.put(1000, 1, "r1")
        cache.put(1000, 2, "r2")
        assert cache.get(1000, 1) == "r1"  # touch 1 so 2 becomes oldest
        cache.put(1000, 3, "r3")
        assert cache.get(1000, 2) is None
        assert cache.get(1000, 1) == "r1"

    def test_windows_are_per_client(self):
        from repro.statemachine.sessions import ClientSessionCache

        cache = ClientSessionCache(window=2)
        for client in (1000, 1001):
            for request_id in (1, 2):
                cache.put(client, request_id, f"{client}.{request_id}")
        assert len(cache) == 4
        assert cache.client_count() == 2
        assert cache.get(1001, 1) == "1001.1"

    def test_rejects_non_positive_window(self):
        from repro.statemachine.sessions import ClientSessionCache

        with pytest.raises(ValueError):
            ClientSessionCache(window=0)
        with pytest.raises(ValueError):
            ClientSessionCache(max_clients=0)

    def test_client_churn_evicts_idle_sessions(self):
        from repro.statemachine.sessions import ClientSessionCache

        cache = ClientSessionCache(window=8, max_clients=2)
        cache.put(1000, 1, "a")
        cache.put(1001, 1, "b")
        assert cache.get(1000, 1) == "a"  # touch 1000 so 1001 is idle
        cache.put(1002, 1, "c")           # third client: evict 1001 wholesale
        assert cache.client_count() == 2
        assert cache.session_evictions == 1
        assert cache.get(1001, 1) is None
        assert cache.get(1000, 1) == "a"
        assert cache.get(1002, 1) == "c"
