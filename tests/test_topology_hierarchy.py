"""Region -> zone -> node hierarchy: placement, validation and latency.

The hierarchy is strictly optional and strictly nested (flat < WAN <
planet); these tests pin the three contracts the rest of the stack builds
on:

* **Validation** -- zones must nest inside their region, partition it, and
  carry globally unique names.
* **Degenerate equivalence** -- every region-level answer
  (``region_of``/``region_map``) from a zoned topology matches its
  zone-free equivalent, and a planet layout restricted to three one-zone
  regions reproduces the paper's WAN round-robin placement.  This is the
  structural half of the golden-fingerprint guarantee.
* **Latency ordering** -- intra-zone < intra-region < cross-region, the
  property that makes zone-aligned relay trees cheaper per edge.
"""

from __future__ import annotations

import pytest

from repro.cluster.topologies import (
    PLANET_INTRA_REGION_ONE_WAY,
    PLANET_REGION_NAMES,
    PLANET_ZONE_ONE_WAY,
    paper_wan_regions,
    planet_topology,
    planet_zone_layout,
    wan_topology,
)
from repro.errors import ConfigurationError
from repro.net.latency import WANMatrixLatency
from repro.net.topology import Region, Topology, Zone


class TestZoneValidation:
    def test_zone_node_outside_region_rejected(self):
        with pytest.raises(ConfigurationError, match="outside"):
            Topology(
                node_ids=[0, 1, 2],
                regions=[
                    Region(
                        name="virginia",
                        nodes=(0, 1),
                        zones=(Zone(name="virginia-z0", nodes=(0, 2)),),
                    )
                ],
            )

    def test_node_in_two_zones_rejected(self):
        with pytest.raises(ConfigurationError, match="more than one zone"):
            Topology(
                node_ids=[0, 1],
                regions=[
                    Region(
                        name="virginia",
                        nodes=(0, 1),
                        zones=(
                            Zone(name="virginia-z0", nodes=(0, 1)),
                            Zone(name="virginia-z1", nodes=(1,)),
                        ),
                    )
                ],
            )

    def test_duplicate_zone_name_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate zone name"):
            Topology(
                node_ids=[0, 1],
                regions=[
                    Region(
                        name="virginia",
                        nodes=(0,),
                        zones=(Zone(name="z0", nodes=(0,)),),
                    ),
                    Region(
                        name="oregon",
                        nodes=(1,),
                        zones=(Zone(name="z0", nodes=(1,)),),
                    ),
                ],
            )

    def test_partial_zone_coverage_allowed(self):
        # Zones may cover only part of a region (the rest is unzoned).
        topology = Topology(
            node_ids=[0, 1, 2],
            regions=[
                Region(
                    name="virginia",
                    nodes=(0, 1, 2),
                    zones=(Zone(name="virginia-z0", nodes=(0,)),),
                )
            ],
        )
        assert topology.zone_of(0) == "virginia-z0"
        assert topology.zone_of(1) is None
        assert topology.zone_map() == {0: "virginia-z0"}
        assert topology.nodes_in_zone("virginia-z0") == [0]
        with pytest.raises(ConfigurationError):
            topology.nodes_in_zone("virginia-z9")


class TestPlanetLayout:
    @pytest.mark.parametrize("num_nodes", (9, 49, 50, 75, 81, 100))
    @pytest.mark.parametrize("shape", ((3, 3), (5, 3), (5, 2)))
    def test_layout_partitions_all_nodes(self, num_nodes, shape):
        num_regions, zones_per_region = shape
        layout = planet_zone_layout(num_nodes, num_regions, zones_per_region)
        placed = [
            node
            for zones in layout.values()
            for nodes in zones.values()
            for node in nodes
        ]
        assert sorted(placed) == list(range(num_nodes))
        assert len(layout) == num_regions
        # Round-robin math: node i lives in region i % R, zone (i // R) % Z.
        names = PLANET_REGION_NAMES[:num_regions]
        for node in range(num_nodes):
            region = names[node % num_regions]
            zone = f"{region}-z{(node // num_regions) % zones_per_region}"
            assert node in layout[region][zone]

    def test_balanced_zones(self):
        layout = planet_zone_layout(81, 3, 3)
        sizes = [len(nodes) for zones in layout.values() for nodes in zones.values()]
        assert max(sizes) - min(sizes) <= 1

    def test_three_one_zone_regions_match_paper_wan_placement(self):
        # Restricted to the paper's shape, the planet layout degenerates to
        # the WAN round-robin assignment -- region for region.
        layout = planet_zone_layout(15, num_regions=3, zones_per_region=1)
        flattened = {
            region: sorted(n for nodes in zones.values() for n in nodes)
            for region, zones in layout.items()
        }
        assert flattened == {
            region: sorted(nodes)
            for region, nodes in paper_wan_regions(15).items()
        }

    def test_planet_topology_region_answers_match_wan_equivalent(self):
        # The degenerate-equivalence contract: consumers that only speak
        # regions see the same answers from a zoned topology as from the
        # zone-free WAN construction over the same placement.
        planet = planet_topology(15, num_regions=3, zones_per_region=3)
        wan = wan_topology(region_nodes=paper_wan_regions(15))
        assert planet.region_map() == wan.region_map()
        for node in range(15):
            assert planet.region_of(node) == wan.region_of(node)
        # And the zoned topology actually carries its zones.
        assert len(set(planet.zone_map().values())) == 9

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            planet_zone_layout(10, num_regions=0)
        with pytest.raises(ConfigurationError):
            planet_zone_layout(10, num_regions=len(PLANET_REGION_NAMES) + 1)
        with pytest.raises(ConfigurationError):
            planet_zone_layout(10, zones_per_region=0)
        with pytest.raises(ConfigurationError):
            planet_zone_layout(0)


class TestHierarchicalLatency:
    def test_latency_ordering(self):
        topology = planet_topology(49, num_regions=3, zones_per_region=3)
        latency = topology.latency
        # Node 0: virginia-z0.  Node 9: virginia-z0 (9 // 3 = 3, 3 % 3 = 0).
        # Node 3: virginia-z1.  Node 1: california-z0.
        assert topology.zone_of(0) == topology.zone_of(9) == "virginia-z0"
        assert topology.zone_of(3) == "virginia-z1"
        intra_zone = latency.base_delay(0, 9)
        intra_region = latency.base_delay(0, 3)
        cross_region = latency.base_delay(0, 1)
        assert intra_zone == PLANET_ZONE_ONE_WAY
        assert intra_region == PLANET_INTRA_REGION_ONE_WAY
        assert intra_zone < intra_region < cross_region

    def test_zone_slower_than_region_rejected(self):
        with pytest.raises(ConfigurationError, match="zone_one_way"):
            WANMatrixLatency(
                node_region={0: "virginia", 1: "virginia"},
                node_zone={0: "virginia-z0", 1: "virginia-z0"},
                local_one_way=0.0001,
                zone_one_way=0.0015,
            )

    def test_empty_zone_map_keeps_two_tier_behaviour(self):
        # Flat/WAN topologies must see the historical two-tier model: the
        # zone branch never fires with an empty node_zone map.
        wan = wan_topology(num_nodes=9)
        zoned = planet_topology(9, num_regions=3, zones_per_region=1)
        for src in range(9):
            for dst in range(9):
                if wan.region_of(src) != wan.region_of(dst):
                    assert wan.latency.base_delay(src, dst) > 0
        # One zone per region: every same-region pair shares a zone, so the
        # intra-zone price applies -- still strictly below cross-region.
        assert zoned.latency.base_delay(0, 3) == PLANET_ZONE_ONE_WAY
