"""Unit tests for workload specs, key distributions, generators and clients."""

from __future__ import annotations

import random

import pytest

from repro.cluster.builder import build_cluster
from repro.errors import WorkloadError
from repro.statemachine.command import OpType
from repro.workload.distributions import SequentialKeys, UniformKeys, ZipfianKeys, make_distribution
from repro.workload.generator import CommandGenerator
from repro.workload.spec import WorkloadSpec


class TestWorkloadSpec:
    def test_paper_default_matches_evaluation_setup(self):
        spec = WorkloadSpec.paper_default()
        assert spec.num_keys == 1000
        assert spec.key_size == 8
        assert spec.value_size == 8
        assert spec.read_ratio == 0.5
        assert spec.distribution == "uniform"

    def test_payload_preset_is_write_only(self):
        spec = WorkloadSpec.payload(1280)
        assert spec.read_ratio == 0.0
        assert spec.value_size == 1280

    def test_invalid_values_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(num_keys=0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(read_ratio=1.5)
        with pytest.raises(WorkloadError):
            WorkloadSpec(distribution="latest")

    def test_with_helpers_return_new_specs(self):
        spec = WorkloadSpec.paper_default()
        assert spec.with_value_size(256).value_size == 256
        assert spec.with_read_ratio(0.0).read_ratio == 0.0
        assert spec.value_size == 8  # original untouched


class TestDistributions:
    def test_uniform_covers_key_space(self):
        distribution = UniformKeys(10)
        rng = random.Random(0)
        seen = {distribution.next_index(rng) for _ in range(500)}
        assert seen == set(range(10))

    def test_sequential_round_robins(self):
        distribution = SequentialKeys(3)
        rng = random.Random(0)
        assert [distribution.next_index(rng) for _ in range(5)] == [0, 1, 2, 0, 1]

    def test_zipfian_skews_towards_low_ranks(self):
        distribution = ZipfianKeys(100, theta=1.2)
        rng = random.Random(1)
        draws = [distribution.next_index(rng) for _ in range(2000)]
        head = sum(1 for d in draws if d < 10)
        assert head > len(draws) * 0.4

    def test_factory_rejects_unknown_name(self):
        with pytest.raises(WorkloadError):
            make_distribution("pareto", 10)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(WorkloadError):
            UniformKeys(0)
        with pytest.raises(WorkloadError):
            ZipfianKeys(10, theta=0)


class TestCommandGenerator:
    def test_request_ids_are_sequential(self):
        generator = CommandGenerator(WorkloadSpec.paper_default(), client_id=7, rng=random.Random(0))
        commands = [generator.next_command() for _ in range(5)]
        assert [c.request_id for c in commands] == [1, 2, 3, 4, 5]
        assert all(c.client_id == 7 for c in commands)

    def test_read_ratio_respected(self):
        spec = WorkloadSpec(read_ratio=0.0)
        generator = CommandGenerator(spec, client_id=1, rng=random.Random(0))
        assert all(generator.next_command().op is OpType.PUT for _ in range(50))
        spec = WorkloadSpec(read_ratio=1.0)
        generator = CommandGenerator(spec, client_id=1, rng=random.Random(0))
        assert all(generator.next_command().op is OpType.GET for _ in range(50))

    def test_value_size_carried_on_writes(self):
        spec = WorkloadSpec(read_ratio=0.0, value_size=1280)
        generator = CommandGenerator(spec, client_id=1, rng=random.Random(0))
        assert generator.next_command().payload_size == 1280

    def test_keys_within_key_space(self):
        spec = WorkloadSpec(num_keys=10)
        generator = CommandGenerator(spec, client_id=1, rng=random.Random(0))
        keys = {generator.next_command().key for _ in range(200)}
        assert len(keys) <= 10


class TestClosedLoopClientIntegration:
    def test_clients_complete_requests_and_record_latency(self):
        cluster = build_cluster(protocol="paxos", num_nodes=3, num_clients=2, seed=5)
        cluster.run(0.3)
        for client in cluster.clients:
            assert client.stats.received > 0
            assert all(latency > 0 for _, latency in client.stats.completions)

    def test_closed_loop_keeps_one_outstanding_request(self):
        cluster = build_cluster(protocol="paxos", num_nodes=3, num_clients=1, seed=5)
        cluster.run(0.3)
        client = cluster.clients[0]
        assert client.stats.sent - client.stats.received <= 1 + client.stats.retries

    def test_client_latency_histogram_populated(self):
        cluster = build_cluster(protocol="pigpaxos", num_nodes=5, num_clients=2, seed=5, relay_groups=2)
        cluster.run(0.3)
        histogram = cluster.sim.metrics.histogram("client.latency")
        assert histogram.count == cluster.total_completed_requests()
